"""Optional event tracing with a typed, serialisable event schema.

A :class:`Tracer` records :class:`TraceEvent` tuples when enabled.
Tracing is off by default (zero overhead beyond one branch); tests, the
recovery debugger, and the coherence sanitizer
(:mod:`repro.analysis`) turn it on to inspect protocol interleavings.

Event names are the typed constants of :class:`Ev`.  Structured events
carry a JSON-serialisable ``detail`` dict (vector clocks as plain int
lists, page states as their string values), so a whole trace can round-
trip through JSON Lines via :meth:`Tracer.to_jsonl` /
:meth:`Tracer.from_jsonl` and be analysed offline with
``python -m repro analyze <trace>``.

The legacy scalar events (``acquire``/``release``/``barrier``/``seal``/
``fault`` with a bare id as detail) are retained unchanged; the
structured schema is additive.

Beyond point events, the tracer also records **causal spans** and
**message edges** (the ``repro.obs`` telemetry substrate):

* a :class:`Span` is a named, categorised ``[t0, t1]`` activity on one
  node's *strand* (``main`` for the application process, ``server`` for
  the protocol handler loop, ``disk`` for in-flight log flushes), with a
  parent span id, forming a per-strand tree;
* a :class:`MsgEdge` is one network message's send->receive hop,
  stamped by the network layer on every DSM message.

Together they form the causal DAG a run's wall time decomposes over:
spans nest within a strand, edges connect strands across nodes.  The
critical-path extractor (:mod:`repro.obs.critical`) walks exactly this
structure.  All span/edge recording is gated on :attr:`Tracer.enabled`
like events, so tracing off stays one predicted branch.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["Ev", "TraceEvent", "Span", "MsgEdge", "Tracer", "TRACING_ACTIVE"]

#: Module-level "any tracer enabled" flag, maintained by the
#: :attr:`Tracer.enabled` setter.  Hot call sites check this (one module
#: attribute load) before touching per-object tracer state or building
#: span names / detail dicts, so a tracing-off run allocates nothing on
#: the observation paths.  Conservative: it may stay True after an
#: enabled tracer is abandoned without being disabled — sites must still
#: check their own tracer's ``enabled`` when the flag is set.
TRACING_ACTIVE = False

_enabled_tracers = 0


class Ev:
    """Typed event-name constants of the trace schema.

    Scalar legacy events (detail is a bare id):

    * :attr:`ACQUIRE`, :attr:`RELEASE`, :attr:`BARRIER`, :attr:`SEAL`,
      :attr:`FAULT`

    Structured events (detail is a JSON-safe dict):

    * synchronisation: :attr:`LOCK_ACQUIRED`, :attr:`LOCK_RELEASED`,
      :attr:`BARRIER_ENTER`, :attr:`BARRIER_EXIT` -- each carries the
      node's applied vector timestamp ``vt``;
    * manager side: :attr:`LOCK_GRANT`, :attr:`LOCK_QUEUE`,
      :attr:`LOCK_FREE`, :attr:`BARRIER_CHECKIN`,
      :attr:`BARRIER_ALL_IN`;
    * intervals and diffs: :attr:`INTERVAL_END` (with word-granularity
      write runs), :attr:`EARLY_DIFF`, :attr:`DIFF_SEND`,
      :attr:`DIFF_APPLY`, :attr:`DIFF_ACKED`;
    * page movement: :attr:`PAGE_SERVE`, :attr:`PAGE_FETCH` (both with
      a CRC32 of the transferred bytes), :attr:`PAGE_STATE` for
      page-table state-machine transitions;
    * logging layer (emitted by
      :class:`~repro.dsm.logginghooks.LoggingHooks`): :attr:`LOG_NOTICES`,
      :attr:`LOG_FETCH`, :attr:`LOG_UPDATE`, :attr:`LOG_EARLY_DIFF`,
      :attr:`LOG_INTERVAL`.
    """

    # -- legacy scalar events (kept stable for existing tooling) -------
    ACQUIRE = "acquire"
    RELEASE = "release"
    BARRIER = "barrier"
    SEAL = "seal"
    FAULT = "fault"

    # -- synchronisation (carry the node's own vt) ---------------------
    LOCK_ACQUIRED = "lock_acquired"
    LOCK_RELEASED = "lock_released"
    BARRIER_ENTER = "barrier_enter"
    BARRIER_EXIT = "barrier_exit"

    # -- manager side --------------------------------------------------
    LOCK_GRANT = "lock_grant"
    LOCK_QUEUE = "lock_queue"
    LOCK_FREE = "lock_free"
    BARRIER_CHECKIN = "barrier_checkin"
    BARRIER_ALL_IN = "barrier_all_in"

    # -- intervals and diffs -------------------------------------------
    INTERVAL_END = "interval_end"
    EARLY_DIFF = "early_diff"
    DIFF_SEND = "diff_send"
    DIFF_APPLY = "diff_apply"
    DIFF_ACKED = "diff_acked"

    # -- page movement and state ---------------------------------------
    PAGE_SERVE = "page_serve"
    PAGE_FETCH = "page_fetch"
    PAGE_STATE = "page_state"

    # -- logging layer ---------------------------------------------------
    LOG_NOTICES = "log_notices"
    LOG_FETCH = "log_fetch"
    LOG_UPDATE = "log_update"
    LOG_EARLY_DIFF = "log_early_diff"
    LOG_INTERVAL = "log_interval"

    #: Events whose ``detail["vt"]`` is the emitting node's own applied
    #: timestamp (the invariant checker's monotonicity set).
    OWN_VT_EVENTS = frozenset(
        {LOCK_ACQUIRED, LOCK_RELEASED, BARRIER_ENTER, BARRIER_EXIT, INTERVAL_END}
    )


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event."""

    time: float
    node: int
    event: str
    detail: Any = None

    def to_json(self) -> str:
        """Encode as one JSON Lines record."""
        return json.dumps(
            {"t": self.time, "n": self.node, "e": self.event, "d": self.detail},
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Decode one JSON Lines record."""
        obj = json.loads(line)
        return cls(obj["t"], obj["n"], obj["e"], obj.get("d"))


@dataclass
class Span:
    """One named activity interval on a node's strand.

    ``t1 < 0`` marks a span still open (ended by a crash, or a disk
    flush whose completion outlived the run).  ``parent`` is the id of
    the enclosing span on the same strand, or -1 for a root.  ``cat``
    is the coarse category the critical-path extractor attributes time
    to: ``cpu``, ``sync``, ``wait``, ``disk``, or ``handler``.
    """

    sid: int
    parent: int
    node: int
    strand: str
    name: str
    cat: str
    t0: float
    t1: float = -1.0
    detail: Any = None

    @property
    def duration(self) -> float:
        """Closed-span length (0.0 while the span is still open)."""
        return self.t1 - self.t0 if self.t1 >= 0 else 0.0

    def to_json(self) -> str:
        """Encode as one JSON Lines record (key ``s`` tags the type)."""
        return json.dumps(
            {"s": self.sid, "p": self.parent, "n": self.node,
             "st": self.strand, "nm": self.name, "c": self.cat,
             "t0": self.t0, "t1": self.t1, "d": self.detail},
            separators=(",", ":"),
        )

    @classmethod
    def from_obj(cls, obj: dict) -> "Span":
        return cls(obj["s"], obj["p"], obj["n"], obj["st"], obj["nm"],
                   obj["c"], obj["t0"], obj["t1"], obj.get("d"))


@dataclass
class MsgEdge:
    """One message's send->receive hop (the DAG's cross-node edges).

    ``t_recv < 0`` marks a message never delivered (dropped by fault
    injection, or in flight when the run ended).  Duplicate deliveries
    keep the first arrival time, matching the signal semantics of
    :meth:`repro.sim.network.Network._deliver`.
    """

    eid: int
    src: int
    dst: int
    kind: str
    size: int
    t_send: float
    t_recv: float = -1.0

    def to_json(self) -> str:
        """Encode as one JSON Lines record (key ``ei`` tags the type)."""
        return json.dumps(
            {"ei": self.eid, "src": self.src, "dst": self.dst,
             "k": self.kind, "sz": self.size,
             "ts": self.t_send, "tr": self.t_recv},
            separators=(",", ":"),
        )

    @classmethod
    def from_obj(cls, obj: dict) -> "MsgEdge":
        return cls(obj["ei"], obj["src"], obj["dst"], obj["k"], obj["sz"],
                   obj["ts"], obj["tr"])


class Tracer:
    """Append-only trace buffer with simple filtering helpers.

    ``maxlen`` bounds the buffer: when set, only the most recent
    ``maxlen`` events are retained (older events are dropped silently),
    which keeps long benchmark runs from growing the trace without
    bound.  The default is unbounded, preserving full traces for the
    invariant checker.
    """

    def __init__(self, enabled: bool = False, maxlen: Optional[int] = None):
        self._enabled = False
        self.enabled = enabled
        self.maxlen = maxlen
        if maxlen is None:
            self.events: List[TraceEvent] = []
        else:
            self.events = deque(maxlen=maxlen)  # type: ignore[assignment]
        self.dropped = 0
        #: Causal spans, in begin order; a span's id is its list index.
        self.spans: List[Span] = []
        #: Message edges, in send order; an edge's id is its list index.
        self.edges: List[MsgEdge] = []
        #: Open-span stack per (node, strand), for parent assignment.
        self._stacks: Dict[Tuple[int, str], List[int]] = {}

    @property
    def enabled(self) -> bool:
        """Whether this tracer records; the setter maintains
        :data:`TRACING_ACTIVE` so hot paths can short-circuit globally."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        global _enabled_tracers, TRACING_ACTIVE
        if value and not self._enabled:
            _enabled_tracers += 1
        elif not value and self._enabled:
            _enabled_tracers -= 1
        self._enabled = value
        TRACING_ACTIVE = _enabled_tracers > 0

    def record(self, time: float, node: int, event: str, detail: Any = None) -> None:
        """Record an event if tracing is enabled."""
        if self._enabled:
            if self.maxlen is not None and len(self.events) == self.maxlen:
                self.dropped += 1
            self.events.append(TraceEvent(time, node, event, detail))

    # ------------------------------------------------------------------
    # causal spans and message edges
    # ------------------------------------------------------------------
    def begin(
        self,
        time: float,
        node: int,
        name: str,
        cat: str,
        strand: str = "main",
        detail: Any = None,
        parent: Optional[int] = None,
    ) -> int:
        """Open a span; returns its id (-1 when tracing is disabled).

        The parent defaults to the innermost open span on the same
        ``(node, strand)``; pass ``parent`` to attach elsewhere (e.g. a
        disk-strand flush span parented to the sealing release).
        """
        if not self._enabled:
            return -1
        stack = self._stacks.setdefault((node, strand), [])
        if parent is None:
            parent = stack[-1] if stack else -1
        sid = len(self.spans)
        self.spans.append(Span(sid, parent, node, strand, name, cat, time,
                               detail=detail))
        stack.append(sid)
        return sid

    def end(self, sid: int, time: float) -> None:
        """Close a span opened by :meth:`begin` (no-op for sid < 0)."""
        # bounds check: a flush-completion callback may fire after clear()
        if sid < 0 or sid >= len(self.spans) or not self._enabled:
            return
        span = self.spans[sid]
        span.t1 = time
        stack = self._stacks.get((span.node, span.strand))
        if stack and sid in stack:
            stack.remove(sid)

    def edge_send(self, time: float, src: int, dst: int, kind: str,
                  size: int) -> int:
        """Record a message leaving ``src``; returns the edge id (-1 off)."""
        if not self._enabled:
            return -1
        eid = len(self.edges)
        self.edges.append(MsgEdge(eid, src, dst, kind, size, time))
        return eid

    def edge_recv(self, eid: int, time: float) -> None:
        """Record the first delivery of edge ``eid`` (no-op for eid < 0)."""
        if eid < 0 or eid >= len(self.edges) or not self._enabled:
            return
        edge = self.edges[eid]
        if edge.t_recv < 0:
            edge.t_recv = time

    def filter(self, event: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given event name and/or node."""
        out: Iterable[TraceEvent] = self.events
        if event is not None:
            out = [e for e in out if e.event == event]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def clear(self) -> None:
        """Drop all recorded events, spans, and edges."""
        self.events.clear()
        self.dropped = 0
        self.spans.clear()
        self.edges.clear()
        self._stacks.clear()

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # offline (de)serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Encode the whole trace as JSON Lines.

        Events first (legacy layout, so pre-span tooling keeps working),
        then spans, then edges; each record type is distinguished by its
        tag key (``e`` / ``s`` / ``ei``).
        """
        lines = [e.to_json() for e in self.events]
        lines.extend(s.to_json() for s in self.spans)
        lines.extend(m.to_json() for m in self.edges)
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str, maxlen: Optional[int] = None) -> "Tracer":
        """Rebuild a (disabled) tracer from :meth:`to_jsonl` output."""
        tracer = cls(enabled=False, maxlen=maxlen)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "e" in obj:
                tracer.events.append(TraceEvent(obj["t"], obj["n"],
                                                obj["e"], obj.get("d")))
            elif "ei" in obj:
                tracer.edges.append(MsgEdge.from_obj(obj))
            else:
                tracer.spans.append(Span.from_obj(obj))
        return tracer

    def save(self, path: str) -> int:
        """Write the trace to ``path`` as JSON Lines; returns event count."""
        with open(path, "w") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")
        return len(self.events)

    @classmethod
    def load(cls, path: str) -> "Tracer":
        """Read a JSON Lines trace written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_jsonl(fh.read())
