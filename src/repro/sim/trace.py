"""Optional event tracing with a typed, serialisable event schema.

A :class:`Tracer` records :class:`TraceEvent` tuples when enabled.
Tracing is off by default (zero overhead beyond one branch); tests, the
recovery debugger, and the coherence sanitizer
(:mod:`repro.analysis`) turn it on to inspect protocol interleavings.

Event names are the typed constants of :class:`Ev`.  Structured events
carry a JSON-serialisable ``detail`` dict (vector clocks as plain int
lists, page states as their string values), so a whole trace can round-
trip through JSON Lines via :meth:`Tracer.to_jsonl` /
:meth:`Tracer.from_jsonl` and be analysed offline with
``python -m repro analyze <trace>``.

The legacy scalar events (``acquire``/``release``/``barrier``/``seal``/
``fault`` with a bare id as detail) are retained unchanged; the
structured schema is additive.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional

__all__ = ["Ev", "TraceEvent", "Tracer"]


class Ev:
    """Typed event-name constants of the trace schema.

    Scalar legacy events (detail is a bare id):

    * :attr:`ACQUIRE`, :attr:`RELEASE`, :attr:`BARRIER`, :attr:`SEAL`,
      :attr:`FAULT`

    Structured events (detail is a JSON-safe dict):

    * synchronisation: :attr:`LOCK_ACQUIRED`, :attr:`LOCK_RELEASED`,
      :attr:`BARRIER_ENTER`, :attr:`BARRIER_EXIT` -- each carries the
      node's applied vector timestamp ``vt``;
    * manager side: :attr:`LOCK_GRANT`, :attr:`LOCK_QUEUE`,
      :attr:`LOCK_FREE`, :attr:`BARRIER_CHECKIN`,
      :attr:`BARRIER_ALL_IN`;
    * intervals and diffs: :attr:`INTERVAL_END` (with word-granularity
      write runs), :attr:`EARLY_DIFF`, :attr:`DIFF_SEND`,
      :attr:`DIFF_APPLY`, :attr:`DIFF_ACKED`;
    * page movement: :attr:`PAGE_SERVE`, :attr:`PAGE_FETCH` (both with
      a CRC32 of the transferred bytes), :attr:`PAGE_STATE` for
      page-table state-machine transitions;
    * logging layer (emitted by
      :class:`~repro.dsm.logginghooks.LoggingHooks`): :attr:`LOG_NOTICES`,
      :attr:`LOG_FETCH`, :attr:`LOG_UPDATE`, :attr:`LOG_EARLY_DIFF`,
      :attr:`LOG_INTERVAL`.
    """

    # -- legacy scalar events (kept stable for existing tooling) -------
    ACQUIRE = "acquire"
    RELEASE = "release"
    BARRIER = "barrier"
    SEAL = "seal"
    FAULT = "fault"

    # -- synchronisation (carry the node's own vt) ---------------------
    LOCK_ACQUIRED = "lock_acquired"
    LOCK_RELEASED = "lock_released"
    BARRIER_ENTER = "barrier_enter"
    BARRIER_EXIT = "barrier_exit"

    # -- manager side --------------------------------------------------
    LOCK_GRANT = "lock_grant"
    LOCK_QUEUE = "lock_queue"
    LOCK_FREE = "lock_free"
    BARRIER_CHECKIN = "barrier_checkin"
    BARRIER_ALL_IN = "barrier_all_in"

    # -- intervals and diffs -------------------------------------------
    INTERVAL_END = "interval_end"
    EARLY_DIFF = "early_diff"
    DIFF_SEND = "diff_send"
    DIFF_APPLY = "diff_apply"
    DIFF_ACKED = "diff_acked"

    # -- page movement and state ---------------------------------------
    PAGE_SERVE = "page_serve"
    PAGE_FETCH = "page_fetch"
    PAGE_STATE = "page_state"

    # -- logging layer ---------------------------------------------------
    LOG_NOTICES = "log_notices"
    LOG_FETCH = "log_fetch"
    LOG_UPDATE = "log_update"
    LOG_EARLY_DIFF = "log_early_diff"
    LOG_INTERVAL = "log_interval"

    #: Events whose ``detail["vt"]`` is the emitting node's own applied
    #: timestamp (the invariant checker's monotonicity set).
    OWN_VT_EVENTS = frozenset(
        {LOCK_ACQUIRED, LOCK_RELEASED, BARRIER_ENTER, BARRIER_EXIT, INTERVAL_END}
    )


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event."""

    time: float
    node: int
    event: str
    detail: Any = None

    def to_json(self) -> str:
        """Encode as one JSON Lines record."""
        return json.dumps(
            {"t": self.time, "n": self.node, "e": self.event, "d": self.detail},
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEvent":
        """Decode one JSON Lines record."""
        obj = json.loads(line)
        return cls(obj["t"], obj["n"], obj["e"], obj.get("d"))


class Tracer:
    """Append-only trace buffer with simple filtering helpers.

    ``maxlen`` bounds the buffer: when set, only the most recent
    ``maxlen`` events are retained (older events are dropped silently),
    which keeps long benchmark runs from growing the trace without
    bound.  The default is unbounded, preserving full traces for the
    invariant checker.
    """

    def __init__(self, enabled: bool = False, maxlen: Optional[int] = None):
        self.enabled = enabled
        self.maxlen = maxlen
        if maxlen is None:
            self.events: List[TraceEvent] = []
        else:
            self.events = deque(maxlen=maxlen)  # type: ignore[assignment]
        self.dropped = 0

    def record(self, time: float, node: int, event: str, detail: Any = None) -> None:
        """Record an event if tracing is enabled."""
        if self.enabled:
            if self.maxlen is not None and len(self.events) == self.maxlen:
                self.dropped += 1
            self.events.append(TraceEvent(time, node, event, detail))

    def filter(self, event: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given event name and/or node."""
        out: Iterable[TraceEvent] = self.events
        if event is not None:
            out = [e for e in out if e.event == event]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # offline (de)serialisation
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Encode the whole trace as JSON Lines (one event per line)."""
        return "\n".join(e.to_json() for e in self.events)

    @classmethod
    def from_jsonl(cls, text: str, maxlen: Optional[int] = None) -> "Tracer":
        """Rebuild a (disabled) tracer from :meth:`to_jsonl` output."""
        tracer = cls(enabled=False, maxlen=maxlen)
        for line in text.splitlines():
            line = line.strip()
            if line:
                tracer.events.append(TraceEvent.from_json(line))
        return tracer

    def save(self, path: str) -> int:
        """Write the trace to ``path`` as JSON Lines; returns event count."""
        with open(path, "w") as fh:
            text = self.to_jsonl()
            if text:
                fh.write(text + "\n")
        return len(self.events)

    @classmethod
    def load(cls, path: str) -> "Tracer":
        """Read a JSON Lines trace written by :meth:`save`."""
        with open(path) as fh:
            return cls.from_jsonl(fh.read())
