"""Optional event tracing.

A :class:`Tracer` records ``(time, node, event, detail)`` tuples when
enabled.  Tracing is off by default (zero overhead beyond one branch);
tests and the recovery debugger turn it on to inspect protocol
interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped protocol event."""

    time: float
    node: int
    event: str
    detail: Any = None


class Tracer:
    """Append-only trace buffer with simple filtering helpers."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, time: float, node: int, event: str, detail: Any = None) -> None:
        """Record an event if tracing is enabled."""
        if self.enabled:
            self.events.append(TraceEvent(time, node, event, detail))

    def filter(self, event: Optional[str] = None, node: Optional[int] = None) -> List[TraceEvent]:
        """Events matching the given event name and/or node."""
        out = self.events
        if event is not None:
            out = [e for e in out if e.event == event]
        if node is not None:
            out = [e for e in out if e.node == node]
        return list(out)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
