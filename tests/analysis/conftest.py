"""Helpers for the coherence-sanitizer tests.

These tests run *deliberately broken* programs and corrupt logs, so
they must not go through the ``--sanitize`` wrapper (it would raise at
``run()`` before the test can inspect the report).  :func:`raw_run`
always calls the unwrapped ``DsmSystem.run``.
"""

from typing import Callable, Optional

import numpy as np

from repro.config import ClusterConfig
from repro.dsm import DsmSystem
from repro.sim.trace import Tracer

ELEMS = 64  # one 256-byte page of int32


class MiniApp:
    name = "mini"

    def __init__(self, program, alloc=None, homes=None):
        self._program = program
        self._alloc = alloc
        self._homes = homes

    def allocate(self, space, nprocs):
        if self._alloc is not None:
            self._alloc(space, nprocs)
        else:
            space.allocate("x", (ELEMS,), np.int32,
                           init=np.zeros(ELEMS, np.int32))

    def homes(self, space, nprocs):
        return self._homes(space, nprocs) if self._homes else None

    def program(self, dsm):
        yield from self._program(dsm)


def build_system(
    program: Callable,
    nprocs: int = 3,
    homes: Optional[Callable] = None,
    hooks_factory=None,
    alloc: Optional[Callable] = None,
) -> DsmSystem:
    """A traced small-page system for one ad-hoc program."""
    config = ClusterConfig.ultra5(num_nodes=nprocs, page_size=256)
    return DsmSystem(
        MiniApp(program, alloc=alloc, homes=homes),
        config,
        hooks_factory,
        tracer=Tracer(enabled=True),
    )


def raw_run(system: DsmSystem, **kwargs):
    """Run bypassing any installed sanitizer wrapper."""
    run = getattr(DsmSystem.run, "__wrapped__", DsmSystem.run)
    return run(system, **kwargs)
