"""The trace-driven protocol invariant checker and race detector."""

import numpy as np
import pytest

from repro.analysis import check_trace
from repro.errors import InvariantViolationError
from repro.sim.trace import Ev, TraceEvent

from tests.analysis.conftest import build_system, raw_run


def homed_at_last(space, nprocs):
    return [nprocs - 1] * space.npages


class TestCleanRuns:
    def test_synchronized_program_has_zero_violations(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = np.arange(64)
            yield from dsm.barrier()
            yield from dsm.read("x")
            assert dsm.arr("x")[0] == 0

        system = build_system(program, nprocs=3)
        result = raw_run(system)
        assert result.completed
        report = check_trace(system.tracer)
        assert report.ok, [str(v) for v in report.violations]
        assert report.events_checked == len(system.tracer)
        assert report.intervals_seen > 0

    def test_lock_chain_has_zero_violations(self):
        def program(dsm):
            for _ in range(3):
                yield from dsm.acquire(0)
                yield from dsm.write("x", 0, 1)
                dsm.arr("x")[0] += 1
                yield from dsm.release(0)
            yield from dsm.barrier()

        system = build_system(program, nprocs=3, homes=homed_at_last)
        assert raw_run(system).completed
        report = check_trace(system.tracer)
        assert report.ok, [str(v) for v in report.violations]
        assert report.races_checked > 0  # same words, but ordered by the lock

    def test_report_raises_on_demand(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.INTERVAL_END,
                       {"interval": 1, "vt": [2, 0], "pages": [], "writes": []}),
            TraceEvent(1.0, 0, Ev.INTERVAL_END,
                       {"interval": 2, "vt": [1, 0], "pages": [], "writes": []}),
        ])
        assert not report.ok
        with pytest.raises(InvariantViolationError, match="vt-monotonic"):
            report.raise_if_failed()


class TestSeededRace:
    def test_concurrent_overlapping_writers_are_reported(self):
        # ranks 0 and 1 write the same words of a page homed at rank 2,
        # with no synchronization between the writes: a data race.
        def program(dsm):
            if dsm.rank in (0, 1):
                yield from dsm.write("x", 0, 4)
                dsm.arr("x")[0:4] = dsm.rank + 1
            yield from dsm.barrier()

        system = build_system(program, nprocs=3, homes=homed_at_last)
        assert raw_run(system).completed
        report = check_trace(system.tracer)
        races = report.by_rule("data-race")
        assert races, "the seeded race went undetected"
        assert "page 0" in races[0].message
        assert "words" in races[0].message

    def test_disjoint_words_do_not_race(self):
        # same page, same interval, but non-overlapping word ranges:
        # false sharing, not a race.
        def program(dsm):
            if dsm.rank in (0, 1):
                lo = dsm.rank * 8
                yield from dsm.write("x", lo, lo + 8)
                dsm.arr("x")[lo:lo + 8] = dsm.rank + 1
            yield from dsm.barrier()

        system = build_system(program, nprocs=3, homes=homed_at_last)
        assert raw_run(system).completed
        report = check_trace(system.tracer)
        assert report.by_rule("data-race") == []

    def test_lock_ordered_writers_do_not_race(self):
        def program(dsm):
            yield from dsm.acquire(0)
            yield from dsm.write("x", 0, 4)
            dsm.arr("x")[0:4] = dsm.rank + 1
            yield from dsm.release(0)
            yield from dsm.barrier()

        system = build_system(program, nprocs=3, homes=homed_at_last)
        assert raw_run(system).completed
        report = check_trace(system.tracer)
        assert report.by_rule("data-race") == []


class TestTamperedTraces:
    """Unit-level: feed hand-built events and hit each rule."""

    def test_illegal_page_transition(self):
        report = check_trace([
            TraceEvent(0.0, 1, Ev.PAGE_STATE,
                       {"page": 2, "from": "invalid", "to": "dirty",
                        "reason": "write", "home": 0}),
        ])
        assert [v.rule for v in report.violations] == ["page-state"]

    def test_home_page_must_not_transition_on_home(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.PAGE_STATE,
                       {"page": 2, "from": "clean", "to": "invalid",
                        "reason": "invalidate", "home": 0}),
        ])
        assert [v.rule for v in report.violations] == ["page-state"]

    def test_lock_acquired_without_notices(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.LOCK_RELEASED, {"lock": 7, "vt": [3, 0]}),
            TraceEvent(1.0, 1, Ev.LOCK_ACQUIRED, {"lock": 7, "vt": [0, 1]}),
        ])
        assert [v.rule for v in report.violations] == ["lock-hb"]

    def test_ack_without_send(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.DIFF_ACKED,
                       {"index": 3, "part": 0, "homes": [1]}),
        ])
        assert [v.rule for v in report.violations] == ["diff-ack-order"]

    def test_seal_before_ack(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.DIFF_SEND,
                       {"home": 1, "index": 1, "part": 0,
                        "pages": [0], "vt": [1, 0]}),
            TraceEvent(1.0, 0, Ev.INTERVAL_END,
                       {"interval": 1, "vt": [1, 0], "pages": [0],
                        "writes": []}),
        ])
        assert [v.rule for v in report.violations] == ["diff-ack-order"]

    def test_fetch_content_differs_from_serve(self):
        report = check_trace([
            TraceEvent(0.0, 0, Ev.PAGE_SERVE,
                       {"page": 4, "to": 1, "crc": 0x1111, "version": [1, 0]}),
            TraceEvent(1.0, 1, Ev.PAGE_FETCH,
                       {"page": 4, "home": 0, "crc": 0x2222, "version": [1, 0]}),
        ])
        assert [v.rule for v in report.violations] == ["serve-fetch"]

    def test_fetch_without_serve(self):
        report = check_trace([
            TraceEvent(0.0, 1, Ev.PAGE_FETCH,
                       {"page": 4, "home": 0, "crc": 0x2222, "version": [1, 0]}),
        ])
        assert [v.rule for v in report.violations] == ["serve-fetch"]
