"""The AST lint pass, rule by rule, on inline snippets."""

import pathlib
import textwrap

from repro.analysis.lint import lint_paths, lint_source, main

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def codes(source: str):
    return [f.code for f in lint_source(textwrap.dedent(source))]


class TestGen001:
    def test_generator_annotation_without_yield(self):
        assert codes("""
            from typing import Any, Generator
            def step() -> Generator[Any, Any, None]:
                return None
        """) == ["GEN001"]

    def test_yield_satisfies_annotation(self):
        assert codes("""
            from typing import Any, Generator
            def step() -> Generator[Any, Any, None]:
                yield 1
        """) == []

    def test_yield_from_satisfies_annotation(self):
        assert codes("""
            from typing import Any, Generator
            def step(inner) -> Generator[Any, Any, None]:
                yield from inner()
        """) == []

    def test_nested_function_yield_does_not_count(self):
        assert codes("""
            from typing import Any, Generator
            def step() -> Generator[Any, Any, None]:
                def inner():
                    yield 1
                return inner()
        """) == ["GEN001"]

    def test_abstract_stub_is_exempt(self):
        assert codes("""
            from typing import Any, Generator
            def step() -> Generator[Any, Any, None]:
                raise NotImplementedError
            def doc_only() -> Generator[Any, Any, None]:
                \"\"\"Subclasses implement.\"\"\"
        """) == []

    def test_iterator_annotation_is_exempt(self):
        assert codes("""
            from typing import Iterator
            def pages() -> Iterator[int]:
                return iter(range(4))
        """) == []


class TestBlk001:
    def test_sleep_flagged(self):
        assert codes("""
            import time
            def serve():
                time.sleep(1)
        """) == ["BLK001"]

    def test_input_inside_generator_flagged(self):
        assert codes("""
            def serve():
                while True:
                    input()
                    yield
        """) == ["BLK001"]

    def test_input_outside_generator_ignored(self):
        assert codes("""
            def prompt():
                return input()
        """) == []


class TestMut001:
    def test_mutable_parameter_default(self):
        assert codes("""
            def f(xs=[]):
                return xs
        """) == ["MUT001"]

    def test_mutable_dataclass_field(self):
        assert codes("""
            from dataclasses import dataclass
            @dataclass
            class Event:
                pages: list = []
        """) == ["MUT001"]

    def test_default_factory_is_fine(self):
        assert codes("""
            from dataclasses import dataclass, field
            @dataclass
            class Event:
                pages: list = field(default_factory=list)
        """) == []

    def test_immutable_defaults_are_fine(self):
        assert codes("""
            def f(a=1, b=None, c=(1, 2)):
                return a
        """) == []


class TestDet001:
    def test_wall_clock_flagged(self):
        assert codes("""
            import time
            def now():
                return time.time()
        """) == ["DET001"]

    def test_global_random_flagged(self):
        assert codes("""
            import random
            def roll():
                return random.random()
        """) == ["DET001"]

    def test_numpy_global_random_flagged(self):
        assert codes("""
            import numpy as np
            def noise(n):
                return np.random.rand(n)
        """) == ["DET001"]

    def test_seeded_numpy_rng_allowed(self):
        assert codes("""
            import numpy as np
            def noise(n, seed):
                rng = np.random.RandomState(seed)
                gen = np.random.default_rng(seed)
                return rng.rand(n) + gen.random(n)
        """) == []


class TestObs001:
    def test_bare_print_flagged(self):
        assert codes("""
            def report(x):
                print(x)
        """) == ["OBS001"]

    def test_console_module_is_exempt(self):
        findings = lint_source("print('ok')\n", "src/repro/obs/console.py")
        assert findings == []

    def test_console_calls_are_fine(self):
        assert codes("""
            from repro.obs.console import get_console
            def report(x):
                get_console().result(x)
        """) == []

    def test_shadowed_print_attribute_not_flagged(self):
        # obj.print(...) is a method call, not the builtin
        assert codes("""
            def report(log, x):
                log.print(x)
        """) == []

    def test_suppressible_like_every_rule(self):
        assert codes("""
            def debug(x):
                print(x)  # lint: ignore
        """) == []


class TestSuppression:
    def test_blanket_marker_silences_everything(self):
        assert codes("""
            import time
            def now():
                return time.time()  # lint: ignore
        """) == []

    def test_blanket_marker_with_trailing_prose(self):
        assert codes("""
            import time
            def now():
                return time.time()  # lint: ignore - timing the host
        """) == []

    def test_scoped_marker_silences_listed_code(self):
        assert codes("""
            import time
            def now():
                return time.time()  # lint: ignore[DET001]
        """) == []

    def test_scoped_marker_leaves_other_codes_alone(self):
        assert codes("""
            import time
            def now():
                print(time.time())  # lint: ignore[DET001]
        """) == ["OBS001"]

    def test_scoped_marker_accepts_a_code_list(self):
        assert codes("""
            import time
            def now():
                print(time.time())  # lint: ignore[DET001, OBS001]
        """) == []

    def test_scoped_marker_for_wrong_code_does_not_apply(self):
        assert codes("""
            import time
            def now():
                return time.time()  # lint: ignore[OBS001]
        """) == ["DET001"]

    def test_is_suppressed_helper(self):
        from repro.analysis.lint import is_suppressed

        lines = ["x = 1  # lint: ignore[DET001,OBS001]", "y = 2"]
        assert is_suppressed(lines, 1, "DET001")
        assert is_suppressed(lines, 1, "OBS001")
        assert not is_suppressed(lines, 1, "BLK001")
        assert not is_suppressed(lines, 2, "DET001")
        assert not is_suppressed(lines, 99, "DET001")  # out of range


class TestHarness:

    def test_finding_format_is_clickable(self):
        finding = lint_source("import time\ntime.sleep(1)\n", "x.py")[0]
        assert str(finding).startswith("x.py:2:1: BLK001")

    def test_repo_source_tree_is_clean(self):
        assert lint_paths([str(SRC)]) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\ntime.sleep(1)\n")
        assert main([str(bad)]) == 1
        assert "BLK001" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
