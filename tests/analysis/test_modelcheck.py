"""Tests for the small-scope model checker (analysis/modelcheck.py).

Covers: exhaustive exploration of bounded configs, the sleep-set
partial-order reduction (soundness and effectiveness vs. the unreduced
explorer), per-crash-point recovery checking, schedule replay from a
repro line, and the acceptance-criterion mutation test -- a protocol
with a dropped log hook must be caught as a recovery violation.
"""

import pytest

from repro.analysis.modelcheck import (
    ModelChecker,
    parse_schedule,
    run_modelcheck,
)
from repro.harness.cli import main as cli_main


# ----------------------------------------------------------------------
# exhaustive exploration of the bounded configs
# ----------------------------------------------------------------------
def test_two_node_lock_exhausts_cleanly():
    report = run_modelcheck(program="lock", nodes=2, pages=1)
    assert report.ok
    assert not report.truncated
    # with per-link FIFO delivery and dst-based independence, the
    # 2-node lock program has exactly one Mazurkiewicz trace
    assert report.explored == 1
    assert report.transitions > 0
    assert report.recovery_checks > 0


def test_two_node_barrier_exhausts_cleanly():
    report = run_modelcheck(program="barrier", nodes=2, pages=2)
    assert report.ok
    assert not report.truncated
    assert report.explored >= 1


def test_three_node_lock_exhausts_and_branches():
    report = run_modelcheck(program="lock", nodes=3, pages=1)
    assert report.ok
    assert not report.truncated
    # three nodes genuinely race on the lock: many inequivalent
    # schedules, and the sleep sets prune a nontrivial share
    assert report.explored > 10
    assert report.pruned > 0
    assert report.recovery_checks > 0


def test_dpor_explores_fewer_executions_than_full_search():
    full = run_modelcheck(program="lock", nodes=3, pages=1,
                          use_dpor=False, budget=120, check_recovery=False)
    reduced = run_modelcheck(program="lock", nodes=3, pages=1,
                             check_recovery=False)
    assert reduced.ok and not reduced.truncated
    assert full.ok  # no violations in whatever prefix the budget covered
    # the unreduced search does not even finish within a budget larger
    # than the number of complete executions the reduced one needs
    # (sleep-blocked prunes abort after a prefix, so they are cheap)
    assert full.truncated
    assert reduced.explored < full.explored


def test_budget_truncation_reported():
    report = run_modelcheck(program="lock", nodes=3, pages=1,
                            budget=5, check_recovery=False)
    assert report.truncated
    assert report.explored + report.pruned == 5


def test_small_scope_bounds_enforced():
    with pytest.raises(ValueError):
        ModelChecker(nodes=8)
    with pytest.raises(ValueError):
        ModelChecker(pages=3)
    with pytest.raises(ValueError):
        ModelChecker(program="fft3d")


# ----------------------------------------------------------------------
# schedule replay (the violation repro path)
# ----------------------------------------------------------------------
def test_parse_schedule_roundtrip():
    assert parse_schedule("") == ()
    assert parse_schedule("0") == (0,)
    assert parse_schedule("0.2.1") == (0, 2, 1)


def test_replay_reruns_one_schedule():
    report = run_modelcheck(program="lock", nodes=3, pages=1,
                            schedule="0.1")
    assert report.ok
    assert report.explored == 1
    assert report.transitions > 0


def test_replay_rejects_stale_decision_index():
    checker = ModelChecker(program="lock", nodes=2, pages=1)
    report = checker.replay("99")
    # an out-of-range decision is a run error, reported as a violation
    assert not report.ok
    assert any("decision" in v.detail or "schedule" in v.detail
               for v in report.violations)


# ----------------------------------------------------------------------
# acceptance criterion: a dropped log hook is caught
# ----------------------------------------------------------------------
class _DroppedNoticeHook(ModelChecker):
    """CCL with ``notify_notices_received`` silenced: lock-grant /
    barrier-release notices never reach the log, so replay of the
    victim diverges from its pre-crash state."""

    def _hooks_factory(self):
        from repro.core.logging_base import make_hooks

        def factory(_node_id):
            hooks = make_hooks(self.protocol)
            hooks.notify_notices_received = lambda *a, **kw: None
            return hooks

        return factory


def test_dropped_log_hook_caught_as_recovery_violation():
    checker = _DroppedNoticeHook(program="lock", nodes=2, pages=1)
    report = checker.explore()
    assert not report.ok
    kinds = {v.kind for v in report.violations}
    assert "recovery" in kinds
    # every recovery violation carries a one-line repro command
    v = next(v for v in report.violations if v.kind == "recovery")
    line = v.repro_command("lock", 2, 1, "ccl")
    assert "modelcheck" in line and "--schedule" in line


def test_violation_repro_line_replays_the_failure():
    checker = _DroppedNoticeHook(program="lock", nodes=2, pages=1)
    report = checker.explore()
    v = next(v for v in report.violations if v.kind == "recovery")
    replayed = _DroppedNoticeHook(
        program="lock", nodes=2, pages=1).replay(v.schedule)
    assert not replayed.ok
    assert any(r.kind == "recovery" for r in replayed.violations)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_modelcheck_smoke(capsys):
    code = cli_main(["modelcheck", "--nodes", "2", "--pages", "1",
                     "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "EXHAUSTED" in out
    assert "violations: 0" in out


def test_cli_modelcheck_rejects_default_cluster_size(capsys):
    # the global --nodes default (8) is outside the small scope
    code = cli_main(["modelcheck", "--quiet"])
    assert code == 2
