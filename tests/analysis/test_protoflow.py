"""Tests for the static message-flow conformance pass (protoflow).

Each rule is exercised against a small fixture corpus of known-good and
known-bad handler modules, including scoped/blanket suppression, and
the real ``src/repro/dsm`` tree is asserted clean (the conformance
claim the CI lint step enforces).
"""

import textwrap

from repro.analysis.protoflow import analyze_paths, analyze_source


def _codes(findings):
    return [f.code for f in findings]


def _analyze(snippet):
    return analyze_source(textwrap.dedent(snippet), "fixture.py")


# ----------------------------------------------------------------------
# PROTO001: sent but never handled
# ----------------------------------------------------------------------
def test_proto001_sent_kind_without_consumer():
    findings = _analyze("""
        class Node:
            def poke(self, dst):
                self._send(dst, "lock_req", None)
    """)
    # lock_req is declared in the protocol table but no expect() here
    assert _codes(findings) == ["PROTO001"]
    assert "lock_req" in findings[0].message


def test_proto001_clean_when_consumed():
    findings = _analyze("""
        class Node:
            def poke(self, dst):
                self._send(dst, "lock_req", None)

            def serve(self):
                msg = expect("lock_req", self.inbox)
                return msg
    """)
    assert findings == []


def test_proto001_clean_when_kind_dispatched_by_comparison():
    findings = _analyze("""
        class Node:
            def poke(self, dst):
                self._send(dst, "lock_req", None)

            def _on_deliver(self, msg):
                if msg.kind == "lock_req":
                    self._manage(msg)
    """)
    assert findings == []


def test_proto001_undeclared_kind_flagged():
    findings = _analyze("""
        class Node:
            def poke(self, dst):
                self._send(dst, "gossip", None)
    """)
    assert _codes(findings) == ["PROTO001"]
    assert "not declared in the protocol table" in findings[0].message


def test_proto001_external_kinds_exempt():
    # recon_req is served by the out-of-band recovery driver, not a
    # simulated handler; the table marks it external
    findings = _analyze("""
        class Node:
            def ask(self, dst):
                self._send(dst, "recon_req", None)
    """)
    assert findings == []


# ----------------------------------------------------------------------
# PROTO002: handler mutates logged state without the log hook
# ----------------------------------------------------------------------
_PROTO002_BAD = """
    class Node:
        def _apply_incoming_diffs(self, msg):
            self.memory[msg.page] = msg.data
            self.home_events.append(msg)
"""

_PROTO002_GOOD = """
    class Node:
        def _apply_incoming_diffs(self, msg):
            self.memory[msg.page] = msg.data
            self.home_events.append(msg)
            self.hooks.notify_update_received(msg)
"""


def test_proto002_dropped_update_hook_flagged():
    # the dropped-log-hook mutation the dynamic checker cannot reach
    # with its bounded programs: covered statically instead
    findings = _analyze(_PROTO002_BAD)
    assert "PROTO002" in _codes(findings)
    f = next(f for f in findings if f.code == "PROTO002")
    assert "notify_update_received" in f.message


def test_proto002_clean_when_hook_called():
    findings = _analyze(_PROTO002_GOOD)
    assert "PROTO002" not in _codes(findings)


def test_proto002_only_fires_on_declared_logged_state():
    findings = _analyze("""
        class Node:
            def _apply_incoming_diffs(self, msg):
                self.scratch = msg.data
    """)
    assert "PROTO002" not in _codes(findings)


# ----------------------------------------------------------------------
# PROTO003: raise between reply construction and send
# ----------------------------------------------------------------------
def test_proto003_raise_between_construct_and_send():
    findings = _analyze("""
        class Node:
            def _serve_page(self, msg):
                reply = PageReply(msg.page, self.memory[msg.page])
                if self.memory[msg.page] is None:
                    raise RuntimeError("page lost")
                self._send(msg.src, "page_reply", reply)

            def _fault_fetch(self, msg):
                got = expect("page_reply", self.inbox)
                return got
    """)
    assert "PROTO003" in _codes(findings)


def test_proto003_clean_when_validation_precedes_construction():
    findings = _analyze("""
        class Node:
            def _serve_page(self, msg):
                if self.memory[msg.page] is None:
                    raise RuntimeError("page lost")
                reply = PageReply(msg.page, self.memory[msg.page])
                self._send(msg.src, "page_reply", reply)

            def _fault_fetch(self, msg):
                got = expect("page_reply", self.inbox)
                return got
    """)
    assert "PROTO003" not in _codes(findings)


# ----------------------------------------------------------------------
# suppression (shared scheme with the lint pass)
# ----------------------------------------------------------------------
def test_scoped_suppression_silences_only_the_listed_code():
    findings = _analyze("""
        class Node:
            def _apply_incoming_diffs(self, msg):
                self.memory[msg.page] = msg.data  # lint: ignore[PROTO002]
    """)
    assert "PROTO002" not in _codes(findings)


def test_scoped_suppression_for_other_code_does_not_apply():
    findings = _analyze("""
        class Node:
            def _apply_incoming_diffs(self, msg):
                self.memory[msg.page] = msg.data  # lint: ignore[DET001]
    """)
    assert "PROTO002" in _codes(findings)


def test_blanket_suppression_applies():
    findings = _analyze("""
        class Node:
            def poke(self, dst):
                self._send(dst, "gossip", None)  # lint: ignore
    """)
    assert findings == []


# ----------------------------------------------------------------------
# the real tree conforms to its own protocol table
# ----------------------------------------------------------------------
def test_repo_dsm_tree_is_conformant():
    findings = analyze_paths(["src/repro/dsm"])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_main_exit_codes(capsys):
    from repro.analysis.protoflow import main

    assert main(["src/repro/dsm"]) == 0
    capsys.readouterr()
