"""The recoverability auditor, including seeded log corruptions."""

import numpy as np
import pytest

from repro.analysis import audit_recoverability
from repro.analysis.sanitize import install, is_installed
from repro.core import CoherenceCentricLogging, MessageLogging
from repro.core.logrecords import (
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)
from repro.dsm import DsmSystem
from repro.errors import RecoverabilityError

from tests.analysis.conftest import build_system, raw_run


def writer_program(dsm):
    """Two lock-ordered remote writers plus barriers: diffs, notices,
    fetches, and update events all end up in the logs."""
    for step in range(2):
        yield from dsm.acquire(0)
        yield from dsm.write("x", 0, 8)
        dsm.arr("x")[0:8] = dsm.rank * 10 + step
        yield from dsm.release(0)
        yield from dsm.barrier()
    yield from dsm.read("x")


def homed_at_last(space, nprocs):
    return [nprocs - 1] * space.npages


def run_logged(hooks_cls):
    system = build_system(
        writer_program, nprocs=3, homes=homed_at_last,
        hooks_factory=lambda _i: hooks_cls(),
    )
    result = raw_run(system)
    assert result.completed
    return system


class TestCleanRuns:
    def test_ccl_run_is_fully_recoverable(self):
        system = run_logged(CoherenceCentricLogging)
        report = audit_recoverability(system)
        assert report.ok, [str(p) for p in report.problems]
        assert report.protocol == "ccl"
        assert report.events_checked > 0
        assert report.fetches_checked > 0
        assert report.content_checked

    def test_ml_run_is_fully_recoverable(self):
        system = run_logged(MessageLogging)
        report = audit_recoverability(system)
        assert report.ok, [str(p) for p in report.problems]
        assert report.protocol == "ml"
        assert report.fetches_checked > 0

    def test_unlogged_run_is_skipped(self):
        system = build_system(writer_program, nprocs=3, homes=homed_at_last)
        assert raw_run(system).completed
        report = audit_recoverability(system)
        assert report.ok
        assert report.skipped_reason is not None


class TestSeededCorruption:
    def test_dropped_diff_is_reported_precisely(self):
        system = run_logged(CoherenceCentricLogging)
        # pick one update event a home logged, then erase the diff it
        # references from the writer's own log
        event = page = None
        for node in system.nodes:
            for rec in node.hooks.log.all_records:
                if isinstance(rec, UpdateEventLogRecord) and rec.pages:
                    event, page = rec, rec.pages[0]
                    break
            if event is not None:
                break
        assert event is not None, "no update event was logged"

        writer_log = system.nodes[event.writer].hooks.log
        for rec in writer_log.all_records:
            if isinstance(rec, OwnDiffLogRecord) and rec.vt_index == event.writer_index:
                rec.diffs = [d for d in rec.diffs if d.page != page]
                rec.home_diffs = [d for d in rec.home_diffs if d.page != page]
                rec.early = [e for e in rec.early if e[1].page != page]

        report = audit_recoverability(system)
        assert not report.ok
        first = report.first_unreachable
        assert first.kind == "missing-diff"
        assert first.page == page
        assert f"writer {event.writer}" in first.message
        assert f"interval {event.writer_index}" in first.message
        with pytest.raises(RecoverabilityError, match="missing-diff"):
            report.raise_if_failed()

    def test_reordered_notices_are_reported(self):
        system = run_logged(CoherenceCentricLogging)
        # find a notice bundle whose records have distinct timestamps
        # and reverse it: replay would invalidate out of causal order
        tampered = False
        for node in system.nodes:
            for rec in node.hooks.log.all_records:
                if isinstance(rec, NoticeLogRecord) and len(rec.records) >= 2:
                    totals = [r.vt.total for r in rec.records]
                    if len(set(totals)) >= 2:
                        rec.records.reverse()
                        tampered = True
                        break
            if tampered:
                break
        assert tampered, "no multi-record notice bundle to corrupt"

        report = audit_recoverability(system)
        assert not report.ok
        assert report.first_unreachable.kind == "notice-order"

    def test_ml_corrupted_page_copy_is_reported(self):
        system = run_logged(MessageLogging)
        rec = next(
            r
            for node in system.nodes
            for r in node.hooks.log.all_records
            if isinstance(r, PageCopyLogRecord) and r.contents is not None
        )
        rec.contents[0] ^= np.int32(1)  # single-bit rot in the logged copy
        report = audit_recoverability(system)
        assert not report.ok
        assert report.first_unreachable.kind == "content-mismatch"
        assert report.first_unreachable.page == rec.page


class TestSanitizeWrapper:
    def test_install_is_idempotent_and_reversible(self):
        if is_installed():
            pytest.skip("sanitizer already active for the whole session")
        original = DsmSystem.run
        undo = install()
        assert is_installed()
        noop = install()  # second install must not double-wrap
        noop()
        assert is_installed()
        undo()
        assert not is_installed()
        assert DsmSystem.run is original

    def test_sanitized_run_passes_clean_program(self):
        undo = install()
        try:
            system = build_system(
                writer_program, nprocs=3, homes=homed_at_last,
                hooks_factory=lambda _i: CoherenceCentricLogging(),
            )
            assert system.run().completed  # checks run inside .run()
        finally:
            undo()
