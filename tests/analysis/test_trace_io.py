"""Tracer serialization: JSONL round-trip and the bounded buffer."""

from repro.sim.trace import Ev, TraceEvent, Tracer


def _sample_tracer() -> Tracer:
    t = Tracer(enabled=True)
    t.record(0.0, 0, Ev.ACQUIRE, 1)
    t.record(1.5, 1, Ev.LOCK_ACQUIRED, {"lock": 1, "vt": [1, 0]})
    t.record(2.0, 1, Ev.PAGE_FETCH,
             {"page": 3, "home": 0, "crc": 0xDEADBEEF, "version": [1, 0]})
    return t


class TestJsonlRoundTrip:
    def test_events_survive_verbatim(self):
        t = _sample_tracer()
        back = Tracer.from_jsonl(t.to_jsonl())
        assert list(back.events) == list(t.events)

    def test_event_json_fields_are_compact(self):
        ev = TraceEvent(2.0, 1, Ev.PAGE_FETCH, {"page": 3})
        assert TraceEvent.from_json(ev.to_json()) == ev
        assert set(ev.to_json()) >= set('{"t"')  # keys are t/n/e/d

    def test_save_load(self, tmp_path):
        t = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        n = t.save(str(path))
        assert n == len(t) == 3
        assert list(Tracer.load(str(path)).events) == list(t.events)

    def test_blank_lines_ignored(self):
        t = _sample_tracer()
        back = Tracer.from_jsonl("\n" + t.to_jsonl() + "\n\n")
        assert len(back) == 3


class TestBoundedBuffer:
    def test_maxlen_keeps_newest_and_counts_dropped(self):
        t = Tracer(enabled=True, maxlen=4)
        for i in range(10):
            t.record(float(i), 0, Ev.SEAL, i)
        assert len(t) == 4
        assert t.dropped == 6
        assert [e.detail for e in t.events] == [6, 7, 8, 9]

    def test_unbounded_drops_nothing(self):
        t = Tracer(enabled=True)
        for i in range(10):
            t.record(float(i), 0, Ev.SEAL, i)
        assert len(t) == 10
        assert t.dropped == 0

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(0.0, 0, Ev.SEAL, 1)
        assert len(t) == 0
