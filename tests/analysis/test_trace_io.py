"""Tracer serialization: JSONL round-trip and the bounded buffer."""

from repro.sim.trace import Ev, MsgEdge, Span, TraceEvent, Tracer


def _sample_tracer() -> Tracer:
    t = Tracer(enabled=True)
    t.record(0.0, 0, Ev.ACQUIRE, 1)
    t.record(1.5, 1, Ev.LOCK_ACQUIRED, {"lock": 1, "vt": [1, 0]})
    t.record(2.0, 1, Ev.PAGE_FETCH,
             {"page": 3, "home": 0, "crc": 0xDEADBEEF, "version": [1, 0]})
    return t


class TestJsonlRoundTrip:
    def test_events_survive_verbatim(self):
        t = _sample_tracer()
        back = Tracer.from_jsonl(t.to_jsonl())
        assert list(back.events) == list(t.events)

    def test_event_json_fields_are_compact(self):
        ev = TraceEvent(2.0, 1, Ev.PAGE_FETCH, {"page": 3})
        assert TraceEvent.from_json(ev.to_json()) == ev
        assert set(ev.to_json()) >= set('{"t"')  # keys are t/n/e/d

    def test_save_load(self, tmp_path):
        t = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        n = t.save(str(path))
        assert n == len(t) == 3
        assert list(Tracer.load(str(path)).events) == list(t.events)

    def test_blank_lines_ignored(self):
        t = _sample_tracer()
        back = Tracer.from_jsonl("\n" + t.to_jsonl() + "\n\n")
        assert len(back) == 3


def _span_tracer() -> Tracer:
    """Events (legacy scalar + structured), spans, and edges together."""
    t = _sample_tracer()
    outer = t.begin(0.0, 0, "barrier", "sync")
    inner = t.begin(0.25, 0, "diff_wait", "wait")  # nested on main strand
    flush = t.begin(0.5, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "async", "interval": 2})
    eid = t.edge_send(0.25, 0, 1, "diff", 4096)
    t.edge_recv(eid, 0.75)
    t.end(flush, 1.0)
    t.end(inner, 1.2)
    t.end(outer, 1.5)
    t.begin(2.0, 1, "compute", "cpu")  # left open (crash cut-off)
    t.edge_send(2.5, 1, 0, "lock_req", 64)  # never delivered
    return t


class TestSpanEdgeRoundTrip:
    def test_spans_and_edges_survive(self):
        t = _span_tracer()
        back = Tracer.from_jsonl(t.to_jsonl())
        assert back.spans == t.spans
        assert back.edges == t.edges
        assert list(back.events) == list(t.events)

    def test_parenthood_and_open_state_preserved(self):
        back = Tracer.from_jsonl(_span_tracer().to_jsonl())
        outer, inner, flush, open_span = back.spans
        assert inner.parent == outer.sid  # same-strand nesting
        assert outer.parent == -1
        assert flush.parent == -1  # disk strand has its own stack
        assert open_span.t1 < 0  # never closed
        assert flush.detail == {"mode": "async", "interval": 2}

    def test_undelivered_edge_keeps_negative_recv(self):
        back = Tracer.from_jsonl(_span_tracer().to_jsonl())
        delivered, pending = back.edges
        assert delivered.t_recv == 0.75
        assert pending.t_recv < 0

    def test_save_load_mixed(self, tmp_path):
        t = _span_tracer()
        path = tmp_path / "trace.jsonl"
        t.save(str(path))
        back = Tracer.load(str(path))
        assert (back.spans, back.edges) == (t.spans, t.edges)

    def test_len_counts_events_only(self):
        assert len(_span_tracer()) == 3

    def test_clear_resets_spans_edges_and_stacks(self):
        t = _span_tracer()
        t.clear()
        assert not t.spans and not t.edges and len(t) == 0
        sid = t.begin(0.0, 0, "fresh", "cpu")
        assert t.spans[sid].parent == -1  # stale stacks would parent this

    def test_disabled_tracer_records_no_spans(self):
        t = Tracer(enabled=False)
        sid = t.begin(0.0, 0, "x", "cpu")
        assert sid == -1
        t.end(sid, 1.0)
        assert t.edge_send(0.0, 0, 1, "diff", 10) == -1
        assert not t.spans and not t.edges

    def test_from_obj_dispatch(self):
        import json

        span = Span(0, -1, 3, "main", "acquire", "sync", 1.0, 2.0)
        assert Span.from_obj(json.loads(span.to_json())) == span
        edge = MsgEdge(0, 1, 2, "diff", 128, 0.5, 0.75)
        assert MsgEdge.from_obj(json.loads(edge.to_json())) == edge


class TestBoundedBuffer:
    def test_maxlen_keeps_newest_and_counts_dropped(self):
        t = Tracer(enabled=True, maxlen=4)
        for i in range(10):
            t.record(float(i), 0, Ev.SEAL, i)
        assert len(t) == 4
        assert t.dropped == 6
        assert [e.detail for e in t.events] == [6, 7, 8, 9]

    def test_unbounded_drops_nothing(self):
        t = Tracer(enabled=True)
        for i in range(10):
            t.record(float(i), 0, Ev.SEAL, i)
        assert len(t) == 10
        assert t.dropped == 0

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(0.0, 0, Ev.SEAL, 1)
        assert len(t) == 0
