"""Recovery on the real workloads: the paper's experiment, end to end.

Crashing a node in each of the four evaluation applications and
replaying from the log must reproduce its state exactly, for both
logging protocols -- this is the strongest system-level test in the
repository (full protocol + real numerical kernels + recovery).
"""

import pytest

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import run_recovery_experiment
from repro.dsm import DsmSystem

CFG = ClusterConfig.ultra5(num_nodes=8)


@pytest.mark.parametrize("name", ["fft3d", "mg", "shallow", "water", "sor", "lu"])
@pytest.mark.parametrize("protocol", ["ml", "ccl"])
def test_workload_recovery_is_bit_exact(name, protocol):
    res = run_recovery_experiment(
        make_app(name), CFG, protocol, failed_node=3
    )
    assert res.ok, (name, protocol, res.mismatches[:5])


@pytest.mark.parametrize("name", ["fft3d", "water"])
def test_recovery_beats_reexecution_on_workloads(name):
    t_reexec = DsmSystem(make_app(name), CFG).run().total_time
    for protocol in ("ml", "ccl"):
        res = run_recovery_experiment(make_app(name), CFG, protocol, failed_node=3)
        assert res.ok
        assert res.recovery_time < t_reexec, (name, protocol)


def test_ccl_recovery_faster_than_ml_on_fft():
    ml = run_recovery_experiment(make_app("fft3d"), CFG, "ml", failed_node=3)
    ccl = run_recovery_experiment(make_app("fft3d"), CFG, "ccl", failed_node=3)
    assert ml.ok and ccl.ok
    assert ccl.recovery_time < ml.recovery_time


def test_mid_run_crash_recovers_on_mg():
    res = run_recovery_experiment(
        make_app("mg"), CFG, "ccl", failed_node=2, at_seal=10
    )
    assert res.ok, res.mismatches[:5]


def test_water_lock_heavy_recovery_windows():
    """Water's mid-interval acquires exercise window-tagged replay."""
    for protocol in ("ml", "ccl"):
        res = run_recovery_experiment(make_app("water"), CFG, protocol, failed_node=5)
        assert res.ok, (protocol, res.mismatches[:5])
        assert res.replay_stats.counters.get("lock_acquires", 0) > 0
