"""Integration tests: each workload runs and verifies under every protocol."""

import numpy as np
import pytest

from repro.apps import APP_REGISTRY, PAPER_APPS, gather_global, make_app
from repro.config import ClusterConfig
from repro.core import make_hooks_factory
from repro.dsm import DsmSystem
from repro.errors import ApplicationError

CFG = ClusterConfig.ultra5(num_nodes=8)
ALL_APPS = list(PAPER_APPS) + ["sor", "lu"]


def run(app, protocol="none", config=CFG):
    system = DsmSystem(app, config, make_hooks_factory(protocol))
    result = system.run()
    return result, system


class TestRegistry:
    def test_paper_apps_registered(self):
        for name in PAPER_APPS:
            assert name in APP_REGISTRY

    def test_unknown_app_rejected(self):
        with pytest.raises(ApplicationError):
            make_app("nonexistent")

    def test_paper_scale_changes_dataset(self):
        small = make_app("fft3d")
        big = make_app("fft3d", paper_scale=True)
        assert big.n > small.n and big.iters > small.iters

    def test_characteristics_table1_fields(self):
        for name, expected_sync in [
            ("fft3d", "barriers"),
            ("mg", "barriers"),
            ("shallow", "barriers"),
            ("water", "locks and barriers"),
        ]:
            c = make_app(name).characteristics()
            assert c["synchronization"] == expected_sync
            assert "iterations" in c["data_set"]


class TestCorrectnessUnderProtocols:
    @pytest.mark.parametrize("name", ALL_APPS)
    @pytest.mark.parametrize("protocol", ["none", "ml", "ccl"])
    def test_app_verifies(self, name, protocol):
        app = make_app(name)
        _result, system = run(app, protocol)
        assert app.verify(system), f"{name} diverged under {protocol}"

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_runs_are_deterministic(self, name):
        r1, _ = run(make_app(name))
        r2, _ = run(make_app(name))
        assert r1.total_time == r2.total_time
        assert r1.network_bytes == r2.network_bytes


class TestProtocolBehaviour:
    def test_fft_transpose_generates_remote_faults(self):
        result, _ = run(make_app("fft3d"))
        agg = result.aggregate
        assert agg.counters["page_faults"] > 0
        assert agg.counters.get("diffs_created", 0) > 0

    def test_water_uses_locks(self):
        result, _ = run(make_app("water"))
        agg = result.aggregate
        assert agg.counters["lock_acquires"] > 0
        assert agg.counters["barriers"] > 0

    def test_barrier_apps_use_no_locks(self):
        for name in ("fft3d", "mg", "shallow", "sor", "lu"):
            result, _ = run(make_app(name))
            assert result.aggregate.counters.get("lock_acquires", 0) == 0, name

    def test_home_alignment_eliminates_diff_traffic(self):
        """Writer-aligned homes: SOR's partition writes are home writes,
        so no diffs ship at all (cf. the A4 ablation).  Needs n=128 so
        each rank's row block is page-aligned; smaller grids false-share
        partition-boundary pages."""
        app = make_app("sor", n=128, iters=4, home_policy="aligned")
        result, system = run(app)
        assert app.verify(system)
        assert result.aggregate.counters.get("diffs_created", 0) == 0

    def test_barrier_prunes_interval_records(self):
        """After barriers, covered interval records are garbage-collected."""
        result, system = run(make_app("sor"))
        agg = result.aggregate
        assert agg.counters.get("records_pruned", 0) > 0
        # tables end (nearly) empty: only the final interval can linger
        for node in system.nodes:
            assert len(node.table) <= 2 * len(system.nodes)

    def test_scaled_datasets_run_quickly(self):
        import time

        t0 = time.time()
        for name in ALL_APPS:
            run(make_app(name))
        assert time.time() - t0 < 30


class TestSmallerClusters:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_apps_verify_on_4_nodes(self, name):
        cfg = ClusterConfig.ultra5(num_nodes=4)
        app = make_app(name)
        _result, system = run(app, config=cfg)
        assert app.verify(system), name

    @pytest.mark.parametrize("name", ["mg", "water", "sor", "lu"])
    def test_apps_verify_on_2_nodes(self, name):
        cfg = ClusterConfig.ultra5(num_nodes=2)
        app = make_app(name)
        _result, system = run(app, config=cfg)
        assert app.verify(system), name


class TestGatherGlobal:
    def test_gather_reassembles_partitioned_variable(self):
        app = make_app("sor")
        result, system = run(app)
        got = gather_global(system, "grid")
        assert got.shape == (app.n, app.n)
        assert np.all(got[0] == 1.0)
