"""Unit tests for the numerical kernels underlying the workloads."""

import numpy as np
import pytest

from repro.apps.mg import (
    jacobi_plane,
    prolong_grid,
    residual_plane,
    restrict_grid,
    sequential_vcycles,
)
from repro.apps.shallow import (
    advance_rows,
    flux_rows,
    initial_fields,
    sequential_shallow,
)
from repro.apps.sor import initial_grid, sequential_sor
from repro.apps.water import (
    initial_molecules,
    pair_forces_for_block,
    sequential_water,
)
from repro.apps.base import block_rows


class TestBlockRows:
    def test_even_split(self):
        assert [block_rows(8, 4, r) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)
        ]

    def test_uneven_split_clamps(self):
        spans = [block_rows(10, 4, r) for r in range(4)]
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert sum(hi - lo for lo, hi in spans) == 10

    def test_more_ranks_than_rows(self):
        spans = [block_rows(2, 4, r) for r in range(4)]
        assert spans[0] == (0, 1) and spans[1] == (1, 2)
        assert spans[2][0] == spans[2][1]  # empty
        assert spans[3][0] == spans[3][1]


class TestMgKernels:
    def setup_method(self):
        rng = np.random.RandomState(0)
        self.u = rng.standard_normal((8, 8, 8))
        self.b = rng.standard_normal((8, 8, 8))

    def test_jacobi_fixed_point_on_exact_solution(self):
        """If b = A u, the Jacobi update leaves u unchanged."""
        u = self.u.copy()
        u[0] = u[-1] = 0
        u[:, 0] = u[:, -1] = 0
        u[:, :, 0] = u[:, :, -1] = 0
        b = np.zeros_like(u)
        for i in range(1, 7):
            # b := A u  (so the residual is exactly zero)
            b[i] = -residual_plane(u, np.zeros_like(u), i)
        for i in range(1, 7):
            updated = jacobi_plane(u, b, i)
            assert np.allclose(updated, u[i], atol=1e-12)

    def test_residual_zero_for_exact_solution(self):
        u = np.zeros((8, 8, 8))
        b = np.zeros((8, 8, 8))
        for i in range(1, 7):
            assert np.allclose(residual_plane(u, b, i), 0.0)

    def test_restrict_injects_even_points(self):
        res = np.arange(8**3, dtype=float).reshape(8, 8, 8)
        coarse = restrict_grid(res, 2)
        assert np.array_equal(coarse, res[4, ::2, ::2])

    def test_prolong_even_plane_interpolates_bilinear(self):
        uc = np.zeros((4, 4, 4))
        uc[1, 1, 1] = 4.0
        fine = prolong_grid(uc, 2, 8)  # even plane -> direct bilinear
        assert fine[2, 2] == 4.0
        assert fine[3, 2] == 2.0  # midpoint between coarse 1 and 2
        assert fine[3, 3] == 1.0  # centre of the coarse cell

    def test_vcycles_reduce_residual(self):
        rng = np.random.RandomState(1)
        rhs = np.zeros((16, 16, 16))
        rhs[1:-1, 1:-1, 1:-1] = rng.standard_normal((14, 14, 14))
        _u, norms = sequential_vcycles(16, 4, 2, 2, 8, rhs)
        assert norms[-1] < 0.5 * norms[0]
        assert all(b <= a * 1.0001 for a, b in zip(norms, norms[1:]))


class TestShallowKernels:
    def test_initial_fields_shapes_and_finite(self):
        f = initial_fields(16)
        for name in ("u", "v", "p"):
            assert f[name].shape == (16, 16)
            assert np.all(np.isfinite(f[name]))

    def test_flux_rows_periodic_wrap(self):
        f = initial_fields(8)
        all_rows = np.arange(8)
        cu_all, _cv, _z, _h = flux_rows(f["p"], f["u"], f["v"], all_rows)
        top = flux_rows(f["p"], f["u"], f["v"], np.array([7]))[0]
        assert np.allclose(top[0], cu_all[7])  # last row wraps to row 0

    def test_sequential_integration_stable_and_finite(self):
        out = sequential_shallow(16, 10, initial_fields(16))
        for name in ("u", "v", "p"):
            assert np.all(np.isfinite(out[name]))
        # mass is nearly conserved by the scheme
        assert out["p"].sum() == pytest.approx(initial_fields(16)["p"].sum(), rel=1e-3)

    def test_advance_uses_old_time_level(self):
        f = initial_fields(8)
        for k in ("cu", "cv", "z", "h"):
            f[k] = np.zeros((8, 8))
        rows = np.arange(8)
        unew, vnew, pnew = advance_rows(f, rows, 2 * 90.0)
        # with zero fluxes the new level equals the old level
        assert np.allclose(unew, f["uold"])
        assert np.allclose(pnew, f["pold"])


class TestWaterKernels:
    def test_newtons_third_law_total_force_zero(self):
        pos, _ = initial_molecules(27, seed=3)
        total = pair_forces_for_block(pos, 0, 27)
        assert np.allclose(total.sum(axis=0), 0.0, atol=1e-9)

    def test_block_decomposition_sums_to_full(self):
        pos, _ = initial_molecules(20, seed=5)
        full = pair_forces_for_block(pos, 0, 20)
        partial = sum(
            pair_forces_for_block(pos, *block_rows(20, 4, b)) for b in range(4)
        )
        assert np.allclose(full, partial, rtol=1e-12)

    def test_cutoff_limits_interactions(self):
        pos = np.array([[0.0, 0, 0], [10.0, 0, 0]])  # far apart
        f = pair_forces_for_block(pos, 0, 2)
        assert np.allclose(f, 0.0)

    def test_sequential_water_moves_molecules(self):
        pos0, _ = initial_molecules(27, seed=7)
        pos, vel = sequential_water(27, 3, 4, seed=7)
        assert not np.allclose(pos, pos0)
        assert np.all(np.isfinite(pos)) and np.all(np.isfinite(vel))


class TestSorKernels:
    def test_boundary_rows_untouched(self):
        g = sequential_sor(16, 3, initial_grid(16))
        assert np.all(g[0] == 1.0)
        assert np.all(g[-1] == 0.0)

    def test_heat_diffuses_downward(self):
        g = sequential_sor(16, 20, initial_grid(16))
        assert g[1, 8] > 0  # interior warmed up
        assert g[1, 8] > g[8, 8] > 0  # monotone-ish front
