"""Unit tests for the blocked-LU kernels."""

import numpy as np
import pytest

from repro.apps.lu import (
    _solve_lower_unit,
    _solve_upper_right,
    block_owner,
    initial_matrix,
    lu_nopiv_inplace,
    sequential_blocked_lu,
)


class TestLuKernels:
    def test_lu_nopiv_reconstructs_matrix(self):
        a0 = initial_matrix(8, seed=1)
        a = a0.copy()
        lu_nopiv_inplace(a)
        lower = np.tril(a, -1) + np.eye(8)
        upper = np.triu(a)
        assert np.allclose(lower @ upper, a0, rtol=1e-10)

    def test_solve_lower_unit(self):
        a = initial_matrix(6, seed=2)
        lu_nopiv_inplace(a)
        lower = np.tril(a, -1) + np.eye(6)
        b = np.arange(36, dtype=float).reshape(6, 6)
        x = _solve_lower_unit(a, b)
        assert np.allclose(lower @ x, b, rtol=1e-10)

    def test_solve_upper_right(self):
        a = initial_matrix(6, seed=3)
        lu_nopiv_inplace(a)
        upper = np.triu(a)
        b = np.arange(36, dtype=float).reshape(6, 6) + 1
        x = _solve_upper_right(a, b)
        assert np.allclose(x @ upper, b, rtol=1e-10)

    def test_blocked_lu_matches_unblocked(self):
        n, b = 16, 4
        blocks = sequential_blocked_lu(n, b, seed=4)
        flat = blocks.swapaxes(1, 2).reshape(n, n)
        ref = initial_matrix(n, seed=4)
        lu_nopiv_inplace(ref)
        assert np.allclose(flat, ref, rtol=1e-9)

    def test_block_owner_scatter_covers_all_ranks(self):
        owners = {block_owner(i, j, 4, 8) for i in range(4) for j in range(4)}
        assert owners == set(range(8))

    def test_block_size_validation(self):
        from repro.apps.lu import LuApp
        from repro.errors import ApplicationError

        with pytest.raises(ApplicationError):
            LuApp(n=30, block=8)
