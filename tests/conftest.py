"""Repo-wide pytest configuration: the ``--sanitize`` opt-in.

``pytest --sanitize`` wraps every :class:`~repro.dsm.system.DsmSystem`
run in the coherence sanitizer (:mod:`repro.analysis.sanitize`): the
run is traced, and on completion the protocol invariant checker and the
recoverability auditor both must pass, turning the whole suite into a
protocol conformance test.  Without the flag the suite is unchanged.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run every DSM run under the coherence sanitizer "
             "(trace + invariant check + recoverability audit)",
    )


@pytest.fixture(scope="session", autouse=True)
def _sanitizer(request):
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis.sanitize import install

    uninstall = install()
    yield
    uninstall()
