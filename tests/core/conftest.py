"""Shared workloads for logging/recovery tests.

Two small but protocol-rich applications:

* :class:`BarrierApp` -- iterative halo-style kernel whose writers are
  deliberately *not* the homes of their pages, so every iteration
  produces remote diffs, asynchronous updates, invalidations, and
  faults.
* :class:`LockApp` -- lock-protected accumulations mixed with barriers,
  exercising mid-interval acquires (window tags) and the lock-chain
  notice propagation.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig

ELEMS = 512  # 2 KB of int32 -> 8 pages of 256 B


class BarrierApp:
    name = "barrier-app"

    def __init__(self, iters=3, elems=ELEMS, flops=1e5, imbalance=0.0):
        self.iters = iters
        self.elems = elems
        self.flops = flops
        #: Per-rank compute skew; >0 creates barrier-wait time that
        #: recovery (which never waits) gets to skip.
        self.imbalance = imbalance

    def allocate(self, space, nprocs):
        space.allocate(
            "x", (self.elems,), np.int32, init=np.zeros(self.elems, np.int32)
        )

    def homes(self, space, nprocs):
        # homes shifted one rank off the writer partition: every write
        # is remote, every iteration ships diffs
        per = -(-space.npages // nprocs)
        return [(min(p // per, nprocs - 1) + 1) % nprocs for p in range(space.npages)]

    def program(self, dsm):
        n = dsm.nprocs
        chunk = self.elems // n
        lo, hi = dsm.rank * chunk, (dsm.rank + 1) * chunk
        nlo = ((dsm.rank + 1) % n) * chunk  # neighbour chunk to read
        for it in range(self.iters):
            yield from dsm.compute(self.flops * (1 + self.imbalance * dsm.rank))
            # sparse writes: a few words per page change, as in real
            # iterative kernels -- diffs stay far smaller than pages
            yield from dsm.write("x", lo, hi)
            dsm.arr("x")[lo:hi:8] = it * 100 + dsm.rank + 1
            yield from dsm.barrier()
            yield from dsm.read("x", nlo, nlo + chunk)
            expected = it * 100 + ((dsm.rank + 1) % n) + 1
            assert np.all(dsm.arr("x")[nlo : nlo + chunk : 8] == expected)
            yield from dsm.barrier()


class LockApp:
    name = "lock-app"

    def __init__(self, iters=2, counters=4):
        self.iters = iters
        self.counters = counters

    def allocate(self, space, nprocs):
        space.allocate(
            "c", (self.counters,), np.int64,
            init=np.zeros(self.counters, np.int64),
        )
        space.allocate("data", (ELEMS,), np.int32,
                       init=np.zeros(ELEMS, np.int32))

    def program(self, dsm):
        n = dsm.nprocs
        chunk = ELEMS // n
        lo, hi = dsm.rank * chunk, (dsm.rank + 1) * chunk
        for it in range(self.iters):
            yield from dsm.write("data", lo, hi)
            dsm.arr("data")[lo:hi] = it + dsm.rank
            for c in range(self.counters):
                yield from dsm.acquire(c)
                yield from dsm.read("c", c, c + 1)
                yield from dsm.write("c", c, c + 1)
                dsm.arr("c")[c] += dsm.rank + 1
                yield from dsm.release(c)
            yield from dsm.barrier()
        yield from dsm.read("c")
        total = sum(range(1, n + 1)) * self.iters
        assert np.all(dsm.arr("c") == total)


@pytest.fixture
def small_cluster():
    return ClusterConfig.ultra5(num_nodes=4, page_size=256)
