"""Adaptive hybrid logging (CCL <-> ML): switching, dispatch, recovery.

The contract under test:

* switch points are deterministic -- same app, same config, same
  budget, same schedule -- and the schedule is pinned as a golden;
* every adaptive log is mixed-mode (ML interval 0, CCL afterwards
  under the default unbounded budget), round-trips losslessly through
  the framed segment codec, and salvages like any other log;
* mixed-mode replay reconstructs the crashed node bit-exactly, with
  each logged interval segment dispatched to the engine whose mode
  logged it;
* the protocol registry rejects unknown names and budget misuse
  up front (the satellite bugfixes).
"""

import pytest

from repro.core import (
    AdaptiveLogging,
    ModeSwitchLogRecord,
    make_hooks,
    make_hooks_factory,
    replay_node_class,
    run_recovery_experiment,
)
from repro.core.adaptive_recovery import AdaptiveReplayNode
from repro.core.ccl_recovery import CclReplayNode
from repro.core.chaos import run_chaos_run
from repro.core.logformat import decode_segment, encode_record, encode_segment
from repro.core.ml_recovery import MlReplayNode
from repro.dsm import DsmSystem
from repro.errors import ConfigError, RecoveryError
from repro.obs import MetricsRegistry
from tests.core.conftest import BarrierApp, LockApp


def switch_schedule(node):
    return [
        (r.interval, r.prev_mode, r.mode)
        for r in node.hooks.log.all_records
        if isinstance(r, ModeSwitchLogRecord)
    ]


def run_adaptive(config, budget=None, app=None):
    system = DsmSystem(
        app or BarrierApp(iters=3), config,
        make_hooks_factory("adaptive", recovery_budget=budget),
        protocol_name="adaptive",
    )
    result = system.run()
    return result, system


class TestSwitchDeterminism:
    def test_same_run_same_switch_points(self, small_cluster):
        _r1, s1 = run_adaptive(small_cluster, budget=1e-6)
        _r2, s2 = run_adaptive(small_cluster, budget=1e-6)
        assert [switch_schedule(n) for n in s1.nodes] == [
            switch_schedule(n) for n in s2.nodes
        ]

    def test_golden_schedule_unbounded_budget(self, small_cluster):
        """Pinned: ML for interval 0, CCL from the first seal on."""
        _res, system = run_adaptive(small_cluster)
        for node in system.nodes:
            assert switch_schedule(node) == [
                (0, "", "ml"), (1, "ml", "ccl"),
            ], node.id

    def test_golden_schedule_tight_budget(self, small_cluster):
        """Pinned: a hopeless budget forces the ML fallback at the
        first priced seal, and the latch holds it there."""
        _res, system = run_adaptive(small_cluster, budget=1e-6)
        for node in system.nodes:
            assert switch_schedule(node) == [
                (0, "", "ml"), (1, "ml", "ccl"), (2, "ccl", "ml"),
            ], node.id

    def test_interval_tags_stay_monotone(self, small_cluster):
        """Mode-switch markers must not break the log's interval order
        (salvage's first-lost computation depends on it)."""
        _res, system = run_adaptive(small_cluster, budget=1e-6)
        for node in system.nodes:
            tags = [r.interval for r in node.hooks.log.all_records]
            assert tags == sorted(tags)


class TestMixedModeLog:
    def test_mixed_log_roundtrips_through_segment_codec(self, small_cluster):
        _res, system = run_adaptive(small_cluster)
        records = system.nodes[0].hooks.log.all_records
        kinds = {type(r) for r in records}
        assert ModeSwitchLogRecord in kinds and len(kinds) >= 3
        buf = encode_segment(7, records)
        back, consumed, error = decode_segment(buf)
        assert error is None and consumed == len(buf)
        assert [encode_record(r) for r in back] == [
            encode_record(r) for r in records
        ]

    def test_torn_mixed_log_salvages_prefix(self, small_cluster):
        _res, system = run_adaptive(small_cluster)
        records = system.nodes[0].hooks.log.all_records
        buf = encode_segment(0, records)
        back, _consumed, error = decode_segment(buf[:-9])
        assert error is not None
        assert len(back) == len(records) - 1
        assert isinstance(back[0], ModeSwitchLogRecord)

    def test_mode_bytes_split_and_switch_count_in_metrics(self, small_cluster):
        result, _system = run_adaptive(small_cluster)
        reg = MetricsRegistry.from_run(result)
        nodes = small_cluster.num_nodes
        assert reg.get("repro_log_mode_switches") == nodes
        assert reg.get("repro_log_mode_bytes", mode="ml") > 0
        assert reg.get("repro_log_mode_bytes", mode="ccl") > 0


class TestMixedModeRecovery:
    @pytest.mark.parametrize("failed_node", [0, 1, 3])
    def test_barrier_app_recovers_exact_state(self, small_cluster, failed_node):
        res = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "adaptive", failed_node
        )
        assert res.ok, res.mismatches
        assert res.recovery_time > 0

    def test_lock_app_recovers_exact_state(self, small_cluster):
        res = run_recovery_experiment(
            LockApp(iters=2), small_cluster, "adaptive", failed_node=2
        )
        assert res.ok, res.mismatches

    def test_tight_budget_fallback_recovers_exact_state(self, small_cluster):
        res = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "adaptive", failed_node=1,
            recovery_budget=1e-6,
        )
        assert res.ok, res.mismatches

    def test_chaos_smoke(self, small_cluster):
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "adaptive", seed=3,
            crash_points=2,
        )
        assert cases and all(c.ok for c in cases), [
            c.detail for c in cases if not c.ok
        ]


class TestRegistry:
    def test_factory_rejects_unknown_name_without_construction(self):
        with pytest.raises(ConfigError, match="unknown logging protocol"):
            make_hooks_factory("paxos")

    def test_budget_rejected_for_static_protocols(self):
        for name in ("none", "ml", "ccl"):
            with pytest.raises(ConfigError, match="recovery_budget"):
                make_hooks_factory(name, recovery_budget=0.5)

    def test_make_hooks_adaptive(self):
        hooks = make_hooks("adaptive", recovery_budget=0.25)
        assert isinstance(hooks, AdaptiveLogging)
        assert hooks.recovery_budget == 0.25
        assert hooks.mode == "ml" and hooks.flush_at_sync_entry

    def test_replay_dispatch_by_name(self):
        assert replay_node_class("ml") is MlReplayNode
        assert replay_node_class("ccl") is CclReplayNode
        assert replay_node_class("adaptive") is AdaptiveReplayNode

    def test_replay_dispatch_rejects_unknown_protocol(self):
        with pytest.raises(RecoveryError, match="no replay engine"):
            replay_node_class("none")


class TestReplayDispatch:
    def test_mode_map_from_switch_points(self):
        """``mode_at`` routes each interval to the mode of the last
        marker at or below it, defaulting to the start mode."""

        class Stub:
            switch_points = [(0, "ml"), (1, "ccl"), (4, "ml")]

        stub = Stub()
        expected = ["ml", "ccl", "ccl", "ccl", "ml", "ml"]
        assert [AdaptiveReplayNode.mode_at(stub, i)
                for i in range(6)] == expected
        assert AdaptiveReplayNode.mode_at(stub, 99) == "ml"
        stub.switch_points = []
        assert AdaptiveReplayNode.mode_at(stub, 0) == "ml"
