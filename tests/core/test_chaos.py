"""Chaos-suite, failpoint-sweep, and fault-plan byte-identity tests."""

import pytest

from repro.apps import make_app
from repro.core import make_hooks_factory, run_recovery_experiment
from repro.core.chaos import run_chaos_run, run_chaos_suite
from repro.core.detector import FailureDetector
from repro.dsm import DsmSystem
from repro.errors import RecoveryError
from repro.sim import DiskFaultPlan, FaultPlan
from tests.core.conftest import BarrierApp, LockApp


class TestNonePlanByteIdentity:
    """``FaultPlan.none()`` must leave every statistic byte-identical.

    This pins the guarantee the whole Table 2 / Fig 4 / Fig 5 pipeline
    rests on: attaching an inert plan takes the exact fault-free network
    code path, so paper numbers are unaffected by the chaos machinery.
    """

    def fingerprint(self, small_cluster, plan):
        system = DsmSystem(
            make_app("sor", n=32, iters=3), small_cluster,
            make_hooks_factory("ccl"), fault_plan=plan,
        )
        r = system.run()
        return (
            r.total_time,
            r.network_bytes,
            r.network_msgs,
            r.bytes_by_kind,
            r.log_summaries,
            [n.vt for n in system.nodes],
            [bytes(n.memory.snapshot()) for n in system.nodes],
        )

    def test_stats_identical_with_and_without_plan(self, small_cluster):
        bare = self.fingerprint(small_cluster, None)
        inert = self.fingerprint(small_cluster, FaultPlan.none())
        assert bare == inert

    def test_inert_plan_uses_bare_network(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=1), small_cluster, make_hooks_factory("ccl"),
            fault_plan=FaultPlan.none(),
        )
        assert system.transport is system.network


class TestFailpointSweep:
    """Crash at every (node, seal) pair: recovery stays bit-exact."""

    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    def test_every_node_at_every_seal(self, small_cluster, protocol):
        probe_run = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory(protocol)
        )
        probe_run.run()
        seal_counts = [n.seal_count for n in probe_run.nodes]
        assert min(seal_counts) >= 4
        for node, seals in enumerate(seal_counts):
            for seal in range(1, seals + 1):
                res = run_recovery_experiment(
                    BarrierApp(iters=2), small_cluster, protocol,
                    failed_node=node, at_seal=seal,
                )
                assert res.ok, (protocol, node, seal, res.mismatches[:3])

    def test_bad_failed_node_fails_fast(self, small_cluster):
        with pytest.raises(RecoveryError, match="not a valid rank"):
            run_recovery_experiment(
                BarrierApp(iters=2), small_cluster, "ccl", failed_node=7
            )


class TestChaosSuite:
    def test_small_suite_is_bit_exact(self, small_cluster):
        report = run_chaos_suite(
            {"barrier": lambda: BarrierApp(iters=3),
             "lock": lambda: LockApp(iters=2)},
            small_cluster,
            protocols=("ccl", "ml"),
            seeds=3, crash_points=3, kill_every=3,
        )
        assert report.ok, report.render()
        # the suite must actually have injected faults of every class
        assert report.fault_totals["dropped"] > 0
        assert report.fault_totals["duplicated"] > 0
        assert report.fault_totals["reordered"] > 0
        assert report.transport_totals["retransmits"] > 0
        # and verified at least one non-trivial recovery
        assert any(c.stop_at >= 1 for c in report.cases)
        assert any(c.live_kill for c in report.cases)

    def test_pinned_crash_time_is_reproducible(self, small_cluster):
        first = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ccl", seed=11,
            crash_node=1, crash_times=[0.004],
        )[0]
        second = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ccl", seed=11,
            crash_node=1, crash_times=[0.004],
        )[0]
        assert [(c.ok, c.stop_at) for c in first] == [
            (c.ok, c.stop_at) for c in second
        ]

    def test_failure_report_carries_repro_command(self, small_cluster):
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ccl", seed=4,
            crash_points=2,
        )
        for c in cases:
            cmd = c.repro_command()
            assert "--seed 4" in cmd and "--crash-time" in cmd


class TestDiskFaultByteIdentity:
    """``DiskFaultPlan.none()`` must be byte-identical to no plan.

    Same pinned guarantee as the network side: an inert disk plan draws
    no randomness and adds no latency, so every paper number survives
    the storage-fault machinery being wired in.
    """

    def fingerprint(self, small_cluster, plan):
        system = DsmSystem(
            make_app("sor", n=32, iters=3), small_cluster,
            make_hooks_factory("ccl"), disk_fault_plan=plan,
        )
        r = system.run()
        return (
            r.total_time,
            r.log_summaries,
            [d["num_writes"] for d in r.disk_stats],
            [bytes(n.memory.snapshot()) for n in system.nodes],
        )

    def test_stats_identical_with_and_without_plan(self, small_cluster):
        bare = self.fingerprint(small_cluster, None)
        inert = self.fingerprint(small_cluster, DiskFaultPlan.none())
        assert bare == inert


class TestChaosDiskFaults:
    """Storage faults under chaos: bit-exact or diagnosed, never silent."""

    def test_hard_write_errors_are_diagnosed_passes(self, small_cluster):
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ml", seed=3,
            crash_points=2, disk_rates={"write_error": 0.95},
        )
        assert cases and all(c.ok for c in cases)
        # at this rate some node exhausts its retries: the run must be
        # reported as a *diagnosed* storage fault, not a silent pass
        assert any(c.detail.startswith("diagnosed:") for c in cases)
        assert any("failed" in c.detail for c in cases)

    def test_mixed_disk_faults_stay_bit_exact_or_diagnosed(self, small_cluster):
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ccl", seed=5,
            crash_points=3,
            disk_rates={"torn_tail": 0.6, "write_error": 0.2, "bitrot": 0.3},
        )
        assert cases and all(c.ok for c in cases), [
            (c.crash_time, c.detail) for c in cases if not c.ok
        ]

    def test_suite_with_disk_rates_passes(self, small_cluster):
        report = run_chaos_suite(
            {"barrier": lambda: BarrierApp(iters=2)},
            small_cluster,
            protocols=("ml", "ccl"),
            seeds=2, crash_points=2,
            disk_rates={"torn_tail": 0.4, "bitrot": 0.1},
        )
        assert report.ok, report.render()

    def test_zero_disk_rates_are_dropped(self, small_cluster):
        """rates of 0.0 must take the plan-free (byte-identical) path."""
        bare = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ml", seed=7,
            crash_points=2,
        )[0]
        zeroed = run_chaos_run(
            lambda: BarrierApp(iters=2), small_cluster, "ml", seed=7,
            crash_points=2,
            disk_rates={"torn_tail": 0.0, "write_error": 0.0, "bitrot": 0.0},
        )[0]
        assert [(c.ok, c.stop_at, c.crash_time) for c in bare] == [
            (c.ok, c.stop_at, c.crash_time) for c in zeroed
        ]


class TestLiveKillDetection:
    def test_victim_detected_and_survivors_blocked(self, small_cluster):
        """Fault injection + heartbeat detector, end to end.

        The plan kills node 2 mid-run: its processes die and the network
        discards its frames, so its heartbeats stop.  The detector on
        node 0 must suspect it within the miss budget, and the survivors
        must stall (recovery exists for a reason).
        """
        kill_at = 0.004
        plan = FaultPlan.uniform(0, drop=0.05, dup=0.05).kill(2, kill_at)
        system = DsmSystem(
            BarrierApp(iters=6), small_cluster, make_hooks_factory("ccl"),
            fault_plan=plan,
        )
        period = 1e-3
        det = FailureDetector(
            system.sim, system.network, monitor=0,
            period_s=period, misses_allowed=3,
        )
        system.sim.spawn(det.monitor_loop(), name="monitor")
        for i in range(1, small_cluster.num_nodes):
            system.sim.spawn(
                FailureDetector.responder_loop(system.network, i),
                name=f"hb{i}",
            )
        result = system.run()
        assert not result.completed
        assert result.blocked
        assert 2 in det.suspected
        latency = det.suspected[2] - kill_at
        assert 0 < latency < 8 * period
        assert det.on_failure.triggered


class TestZoneChaos:
    """Zone-scoped chaos: whole-domain kills against replicated homes
    (failover and classic replay) and partition ride-out."""

    def _zoned(self, small_cluster):
        return small_cluster.with_zones(2)

    def test_zone_kill_under_failover_is_bit_exact(self, small_cluster):
        config = self._zoned(small_cluster)
        cases, plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=3), config, "failover", seed=5,
            crash_points=2, replication=2, zone_kill=1,
        )
        assert cases, "zone kill produced no cases"
        assert all(c.ok for c in cases), [c.detail for c in cases if not c.ok]
        # every node of zone 1 was a victim at every probed instant
        victims = {c.crash_node for c in cases}
        assert victims == set(config.nodes_in_zone(1))
        assert plan.summary()["dead_discards"] > 0

    def test_zone_kill_under_classic_replay_is_bit_exact(self, small_cluster):
        config = self._zoned(small_cluster)
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=3), config, "ccl", seed=5,
            crash_points=2, replication=2, zone_kill=0,
        )
        assert cases and all(c.ok for c in cases), [
            c.detail for c in cases if not c.ok
        ]
        assert {c.crash_node for c in cases} == set(config.nodes_in_zone(0))

    def test_zone_partition_rides_out_to_completion(self, small_cluster):
        config = self._zoned(small_cluster)
        cases, plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=3), config, "ccl", seed=9,
            crash_points=2, zone_partition=(0, 1),
        )
        assert cases and all(c.ok for c in cases), [
            c.detail for c in cases if not c.ok
        ]
        assert plan.summary()["partition_discards"] > 0

    def test_failover_without_replication_is_config_error(self, small_cluster):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="replication >= 2"):
            run_chaos_run(
                lambda: BarrierApp(iters=2), self._zoned(small_cluster),
                "failover", seed=1, replication=1,
            )

    def test_unknown_zone_is_config_error(self, small_cluster):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown zone"):
            run_chaos_run(
                lambda: BarrierApp(iters=2), self._zoned(small_cluster),
                "ccl", seed=1, zone_kill=7,
            )

    def test_repro_command_carries_zone_flags(self, small_cluster):
        config = self._zoned(small_cluster)
        cases, _plan, _tr = run_chaos_run(
            lambda: BarrierApp(iters=2), config, "failover", seed=3,
            crash_points=1, replication=2, zone_kill=1,
        )
        for c in cases:
            cmd = c.repro_command()
            assert "--replication 2" in cmd
            assert "--zones 2" in cmd
            assert "--zone-kill 1" in cmd
