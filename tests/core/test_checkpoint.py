"""Tests for checkpointing and checkpoint-based recovery."""

import pytest

from repro.core import Checkpointer, make_hooks_factory, run_recovery_experiment
from repro.dsm import DsmSystem
from repro.errors import CheckpointError
from tests.core.conftest import BarrierApp


def run_with_checkpoints(app, config, protocol="ccl", every=2):
    system = DsmSystem(app, config, make_hooks_factory(protocol))
    ckpts = {}
    for node in system.nodes:
        ckpts[node.id] = Checkpointer(every)
        node.checkpointer = ckpts[node.id]
    result = system.run()
    return result, ckpts


class TestCheckpointer:
    def test_period_validation(self):
        with pytest.raises(CheckpointError):
            Checkpointer(0)

    def test_first_full_then_incremental(self, small_cluster):
        _result, ckpts = run_with_checkpoints(
            BarrierApp(iters=4), small_cluster, every=2
        )
        metas = ckpts[1].metas
        assert len(metas) >= 2
        assert metas[0].full and not metas[1].full
        # incremental checkpoints only write modified pages
        assert metas[1].nbytes < metas[0].nbytes
        assert metas[1].pages_written < metas[0].pages_written

    def test_checkpoints_taken_at_period(self, small_cluster):
        _result, ckpts = run_with_checkpoints(
            BarrierApp(iters=4), small_cluster, every=2
        )
        seals = [m.seal for m in ckpts[0].metas]
        assert seals == [2, 4, 6, 8]

    def test_checkpoint_time_charged(self, small_cluster):
        result, _ckpts = run_with_checkpoints(
            BarrierApp(iters=4), small_cluster, every=2
        )
        agg = result.aggregate
        assert agg.counters["checkpoints"] > 0
        assert agg.time.get("checkpoint") > 0

    def test_latest_before(self, small_cluster):
        _result, ckpts = run_with_checkpoints(
            BarrierApp(iters=4), small_cluster, every=2
        )
        ck = ckpts[1]
        assert ck.latest_before(1) is None
        assert ck.latest_before(2).seal == 2
        assert ck.latest_before(5).seal == 4
        assert ck.latest_before(99).seal == max(m.seal for m in ck.metas)


class TestCheckpointRecovery:
    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    def test_recovery_from_checkpoint_is_exact(self, small_cluster, protocol):
        res = run_recovery_experiment(
            BarrierApp(iters=4, flops=1e6, imbalance=2.0),
            small_cluster,
            protocol,
            failed_node=1,
            checkpoint_every=2,
        )
        assert res.ok, res.mismatches

    def test_checkpoint_shortens_recovery(self, small_cluster):
        app = lambda: BarrierApp(iters=6, flops=1e6, imbalance=2.0)  # noqa: E731
        without = run_recovery_experiment(
            app(), small_cluster, "ccl", failed_node=1
        )
        with_ck = run_recovery_experiment(
            app(), small_cluster, "ccl", failed_node=1, checkpoint_every=4
        )
        assert without.ok and with_ck.ok
        assert with_ck.recovery_time < without.recovery_time

    def test_checkpoint_at_crash_seal_not_used(self, small_cluster):
        """The crash happens *before* the next checkpoint; a checkpoint
        coinciding with the crash seal must not be restored from."""
        res = run_recovery_experiment(
            BarrierApp(iters=4, flops=1e6, imbalance=2.0),
            small_cluster,
            "ccl",
            failed_node=1,
            at_seal=4,
            checkpoint_every=4,
        )
        assert res.ok, res.mismatches
        # replay did real work (it could not just restore seal-4 state)
        assert res.recovery_time > 0
