"""Tests for coordinated (barrier-aligned) checkpointing.

The paper notes its logging protocol "is applicable to coordinated
checkpointing as well"; here checkpoints are triggered at barrier
episodes, which are consistent global cuts under HLRC (all diffs are
acknowledged before check-in).
"""

import pytest

from repro.core import Checkpointer, make_hooks_factory, run_recovery_experiment
from repro.dsm import DsmSystem
from repro.errors import CheckpointError
from tests.core.conftest import BarrierApp, LockApp


def run_with(app, config, every, on):
    system = DsmSystem(app, config, make_hooks_factory("ccl"))
    ckpts = {}
    for node in system.nodes:
        ckpts[node.id] = Checkpointer(every, on=on)
        node.checkpointer = ckpts[node.id]
    system.run()
    return ckpts


def test_trigger_validation():
    with pytest.raises(CheckpointError):
        Checkpointer(2, on="phases-of-the-moon")


def test_barrier_checkpoints_align_across_nodes(small_cluster):
    """Coordinated mode: every node checkpoints at the same barrier
    episodes, even when their seal counts diverge (lock programs)."""
    ckpts = run_with(LockApp(iters=2), small_cluster, every=1, on="barriers")
    counts = {i: len(c.metas) for i, c in ckpts.items()}
    assert len(set(counts.values())) == 1  # same number everywhere
    assert all(n > 0 for n in counts.values())


def test_seal_checkpoints_diverge_on_lock_programs(small_cluster):
    """Independent mode on a lock program: nodes checkpoint at their own
    pace (different ranks hold different numbers of sealed intervals)."""
    ckpts = run_with(LockApp(iters=3), small_cluster, every=3, on="seals")
    # manager nodes seal more intervals than others -> counts vary
    counts = {i: len(c.metas) for i, c in ckpts.items()}
    assert all(n >= 1 for n in counts.values())


def test_barrier_mode_takes_nothing_without_barriers(small_cluster):
    ckpt = Checkpointer(1, on="barriers")
    # maybe_take (seal trigger) must be a no-op in barrier mode
    class FakeNode:
        seal_count = 4

    consumed = list(ckpt.maybe_take(FakeNode()))
    assert consumed == [] and not ckpt.metas


@pytest.mark.parametrize("mode", ["seals", "barriers"])
def test_recovery_from_coordinated_checkpoint_is_exact(small_cluster, mode):
    res = run_recovery_experiment(
        BarrierApp(iters=6, flops=1e6, imbalance=2.0),
        small_cluster,
        "ccl",
        failed_node=1,
        checkpoint_every=3,
        checkpoint_mode=mode,
    )
    assert res.ok, (mode, res.mismatches)


def test_coordinated_checkpoint_shortens_recovery(small_cluster):
    app = lambda: BarrierApp(iters=6, flops=1e6, imbalance=2.0)  # noqa: E731
    without = run_recovery_experiment(app(), small_cluster, "ccl", failed_node=1)
    with_ck = run_recovery_experiment(
        app(), small_cluster, "ccl", failed_node=1,
        checkpoint_every=4, checkpoint_mode="barriers",
    )
    assert without.ok and with_ck.ok
    assert with_ck.recovery_time < without.recovery_time
