"""Tests for the heartbeat failure detector."""

import pytest

from repro.config import NetworkConfig
from repro.core.detector import FailureDetector
from repro.errors import ConfigError
from repro.sim import Network, Simulator, Timeout


def build(num_nodes=4, period=5e-3, misses=3):
    sim = Simulator()
    net = Network(sim, NetworkConfig(), num_nodes=num_nodes)
    det = FailureDetector(sim, net, monitor=0, period_s=period,
                          misses_allowed=misses)
    monitor = sim.spawn(det.monitor_loop(), name="monitor")
    responders = [
        sim.spawn(FailureDetector.responder_loop(net, i), name=f"hb{i}")
        for i in range(1, num_nodes)
    ]
    return sim, det, monitor, responders


def test_parameter_validation():
    sim = Simulator()
    net = Network(sim, NetworkConfig(), num_nodes=2)
    with pytest.raises(ConfigError):
        FailureDetector(sim, net, 0, period_s=0)
    with pytest.raises(ConfigError):
        FailureDetector(sim, net, 0, misses_allowed=0)


def test_healthy_cluster_raises_no_suspicion():
    sim, det, monitor, responders = build()
    sim.run(until=0.2, detect_deadlock=False)
    assert det.suspected == {}
    assert not det.on_failure.triggered
    monitor.kill()
    for r in responders:
        r.kill()


def test_killed_node_is_detected_within_bound():
    sim, det, monitor, responders = build(period=5e-3, misses=3)
    crash_time = 0.05

    def killer():
        yield Timeout(crash_time)
        responders[1].kill()  # node 2 stops answering

    sim.spawn(killer(), name="killer")
    sim.run(until=0.5, detect_deadlock=False)
    assert 2 in det.suspected
    latency = det.suspected[2] - crash_time
    # detection within (misses + slack) periods of the crash
    assert 0 < latency < 6 * det.period_s
    assert det.on_failure.triggered
    node, t = det.on_failure.value
    assert node == 2 and t == det.suspected[2]
    monitor.kill()
    for r in responders:
        r.kill()


def test_survivors_stay_trusted_after_a_failure():
    sim, det, monitor, responders = build(period=5e-3, misses=3)

    def killer():
        yield Timeout(0.03)
        responders[0].kill()  # node 1 dies

    sim.spawn(killer(), name="killer")
    sim.run(until=0.4, detect_deadlock=False)
    assert set(det.suspected) == {1}
    monitor.kill()
    for r in responders:
        r.kill()
