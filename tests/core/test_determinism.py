"""Determinism guards.

Message logging's correctness rests on piecewise-deterministic
execution; the simulator makes the whole system deterministic, and
these tests pin that property for every experiment type, so a future
change that introduces ordering nondeterminism (set iteration, dict
ordering on ids, unseeded randomness) fails loudly.
"""

import pytest

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import (
    make_hooks_factory,
    run_multi_recovery_experiment,
    run_recovery_experiment,
)
from repro.dsm import DsmSystem

CFG = ClusterConfig.ultra5(num_nodes=4)


def test_runs_identical_across_repetitions():
    results = []
    for _ in range(2):
        app = make_app("water", molecules=32, steps=2)
        system = DsmSystem(app, CFG, make_hooks_factory("ccl"))
        results.append(system.run())
    a, b = results
    assert a.total_time == b.total_time
    assert a.network_bytes == b.network_bytes
    assert a.total_log_bytes == b.total_log_bytes
    assert a.num_flushes == b.num_flushes
    for sa, sb in zip(a.node_stats, b.node_stats):
        assert sa.counters == sb.counters


@pytest.mark.parametrize("protocol", ["ml", "ccl"])
def test_recovery_identical_across_repetitions(protocol):
    times, stats = [], []
    for _ in range(2):
        res = run_recovery_experiment(
            make_app("sor", n=32, iters=3), CFG, protocol, failed_node=1
        )
        assert res.ok
        times.append(res.recovery_time)
        stats.append(dict(res.replay_stats.counters))
    assert times[0] == times[1]
    assert stats[0] == stats[1]


def test_multi_recovery_identical_across_repetitions():
    outcomes = []
    for _ in range(2):
        res = run_multi_recovery_experiment(
            make_app("sor", n=32, iters=3), CFG, "ccl", failed_nodes=(1, 2)
        )
        assert res.ok
        outcomes.append(dict(res.recovery_times))
    assert outcomes[0] == outcomes[1]


def test_coherence_protocols_deterministic():
    for coherence in ("lrc", "hlrc-migrate"):
        times = []
        for _ in range(2):
            app = make_app("sor", n=32, iters=3)
            system = DsmSystem(app, CFG, coherence=coherence)
            times.append(system.run().total_time)
        assert times[0] == times[1], coherence
