"""Replay-free failover recovery: bit-exact promotion, no page replay,
diagnosed refusals when the quorum is gone or replication is off.

The contract mirrors the salvage layer's (docs/robustness.md): the
promoted follower's reconstructed home state is bit-exact against the
crash-point probe snapshot, or failover refuses with a diagnosed
``RecoveryError`` -- never silently wrong, and never by replaying page
contents (the breakdown carries no ``page_replay`` component).
"""

import pytest

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import make_hooks_factory
from repro.core.failover_recovery import (
    choose_candidate,
    recover_via_failover,
    run_failover_experiment,
)
from repro.core.failure import CrashProbe
from repro.core.recovery import replay_failed_node
from repro.dsm import DsmSystem
from repro.errors import RecoveryError
from repro.harness.scales import app_kwargs

CONFIG = ClusterConfig.ultra5(num_nodes=4)


def _app(name="sor"):
    return make_app(name, **app_kwargs(name, "test"))


@pytest.fixture(scope="module")
def failover_result():
    return run_failover_experiment(
        _app(), CONFIG, replication=2, failed_node=1,
    )


class TestFailoverExperiment:
    def test_recovery_is_bit_exact(self, failover_result):
        assert failover_result.ok, failover_result.mismatches[:3]
        assert failover_result.verified

    def test_breakdown_has_no_page_replay(self, failover_result):
        assert set(failover_result.breakdown) == {
            "detection", "promotion", "meta_replay", "diff_refetch",
        }
        assert "page_replay" not in failover_result.breakdown

    def test_promotion_fences_at_next_epoch(self, failover_result):
        # ring placement at k=2: node 1's only follower is node 2
        assert failover_result.promoted == 2
        assert failover_result.epoch == 1

    def test_timings_are_positive_and_consistent(self, failover_result):
        r = failover_result
        assert r.detection_time > 0
        assert r.recovery_time > 0
        assert r.breakdown["detection"] == pytest.approx(r.detection_time)
        # recovery time excludes detection, like the classic experiments
        assert r.recovery_time == pytest.approx(
            r.breakdown["promotion"] + r.breakdown["meta_replay"]
            + r.breakdown["diff_refetch"]
        )

    def test_replication_1_is_a_diagnosed_refusal(self):
        with pytest.raises(RecoveryError, match="replication >= 2"):
            run_failover_experiment(
                _app(), CONFIG, replication=1, failed_node=1,
            )

    def test_bad_failed_node_is_a_diagnosed_refusal(self):
        with pytest.raises(RecoveryError, match="not a valid rank"):
            run_failover_experiment(
                _app(), CONFIG, replication=2, failed_node=9,
            )


@pytest.fixture(scope="module")
def replicated_phase_a():
    """One probed, replicated (k=2) failure-free run, shared across the
    refusal tests -- none of them mutate group state irrecoverably."""
    system = DsmSystem(
        _app(), CONFIG, make_hooks_factory("failover"), replication=2,
    )
    probe = CrashProbe(1)
    system.add_probe(probe)
    system.run()
    probe.finalize()
    return system, probe


class TestQuorumLoss:
    def test_dead_followers_mean_diagnosed_refusal(self, replicated_phase_a):
        system, _probe = replicated_phase_a
        group = system.replica_groups[1]
        dead = (1, *group.followers)  # victim + its every replica
        with pytest.raises(RecoveryError, match="quorum lost"):
            choose_candidate(system, 1, dead)
        plog = system.nodes[1].hooks.log
        with pytest.raises(RecoveryError, match="failover refused"):
            recover_via_failover(CONFIG, system, 1, plog, stop_at=1,
                                 dead=dead)

    def test_unreplicated_node_has_no_group(self, replicated_phase_a):
        system, _probe = replicated_phase_a
        system_plain = DsmSystem(_app(), CONFIG, make_hooks_factory("ccl"))
        system_plain.run()
        with pytest.raises(RecoveryError, match="no replica group"):
            choose_candidate(system_plain, 1, (1,))

    def test_refusal_names_the_classic_fallback(self, replicated_phase_a):
        system, _probe = replicated_phase_a
        group = system.replica_groups[1]
        with pytest.raises(RecoveryError, match="classic replay"):
            choose_candidate(system, 1, (1, *group.followers))


class TestMigrationDriftGuard:
    """Replay assumes static homes; a drifted home map must be a
    diagnosed refusal, not a misdirected reconstruction request."""

    def test_drifted_home_map_refused(self):
        system = DsmSystem(_app(), CONFIG, make_hooks_factory("ccl"))
        probe = CrashProbe(1)
        system.add_probe(probe)
        system.run()
        probe.finalize()
        # simulate a post-construction home hand-off of page 0
        old_home = system.nodes[0].pagetable.entry(0).home
        new_home = (old_home + 1) % CONFIG.num_nodes
        for node in system.nodes:
            node.pagetable.entry(0).home = new_home
        plog = system.nodes[1].hooks.log
        with pytest.raises(RecoveryError, match="home map drifted"):
            replay_failed_node(
                _app(), CONFIG, "ccl", system, 1, plog,
                stop_at=probe.snapshot.seal_count,
            )
