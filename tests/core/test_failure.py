"""Tests for failure specification and crash-point capture."""

import numpy as np
import pytest

from repro.core import CrashProbe, FailureSpec, make_hooks_factory
from repro.dsm import DsmSystem
from repro.memory import PageState
from tests.core.conftest import BarrierApp


def test_failure_spec_validation():
    with pytest.raises(ValueError):
        FailureSpec(node=-1, at_seal=1)
    with pytest.raises(ValueError):
        FailureSpec(node=0, at_seal=0)
    spec = FailureSpec(node=2, at_seal=5)
    assert spec.node == 2 and spec.at_seal == 5


class TestCrashProbe:
    def test_snapshot_taken_at_requested_seal(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1, at_seal=2)
        system.add_probe(probe)
        system.run()
        snap = probe.snapshot
        assert snap is not None
        assert snap.node_id == 1
        assert snap.seal_count == 2
        assert snap.time > 0
        assert isinstance(snap.memory, np.ndarray)

    def test_none_seal_keeps_last(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1)
        system.add_probe(probe)
        system.run()
        # 3 iterations x 2 barriers = 6 seals
        assert probe.snapshot.seal_count == 6

    def test_snapshot_page_states_plausible(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=0)
        system.add_probe(probe)
        system.run()
        states = [s for (s, _v) in probe.snapshot.page_states.values()]
        # at a seal there are no dirty pages: twins were diffed away
        assert PageState.DIRTY not in states
        assert PageState.CLEAN in states

    def test_probe_ignores_other_nodes(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=3, at_seal=1)
        system.add_probe(probe)
        system.run()
        assert probe.snapshot.node_id == 3

    def test_probe_force_seals_victim_log(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1, at_seal=4)
        system.add_probe(probe)
        system.run()
        log = system.nodes[1].hooks.log
        # everything the victim buffered through seal 4 is queryable
        assert log.bundle(3)  # interval 3 sealed by sync op 4
