"""Tests for failure specification and crash-point capture."""

import numpy as np
import pytest

from repro.core import CrashProbe, FailureSpec, make_hooks_factory
from repro.dsm import DsmSystem
from repro.memory import PageState
from tests.core.conftest import BarrierApp


def test_failure_spec_validation():
    with pytest.raises(ValueError):
        FailureSpec(node=-1, at_seal=1)
    with pytest.raises(ValueError):
        FailureSpec(node=0, at_seal=0)
    spec = FailureSpec(node=2, at_seal=5)
    assert spec.node == 2 and spec.at_seal == 5
    spec.validate(num_nodes=4)  # in range: fine
    with pytest.raises(ValueError, match="nodes 0..1"):
        spec.validate(num_nodes=2)


class TestCrashProbe:
    def test_snapshot_taken_at_requested_seal(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1, at_seal=2)
        system.add_probe(probe)
        system.run()
        snap = probe.snapshot
        assert snap is not None
        assert snap.node_id == 1
        assert snap.seal_count == 2
        assert snap.time > 0
        assert isinstance(snap.memory, np.ndarray)

    def test_none_seal_keeps_last(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1)
        system.add_probe(probe)
        system.run()
        # 3 iterations x 2 barriers = 6 seals
        assert probe.snapshot.seal_count == 6

    def test_snapshot_page_states_plausible(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=0)
        system.add_probe(probe)
        system.run()
        states = [s for (s, _v) in probe.snapshot.page_states.values()]
        # at a seal there are no dirty pages: twins were diffed away
        assert PageState.DIRTY not in states
        assert PageState.CLEAN in states

    def test_probe_ignores_other_nodes(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=3, at_seal=1)
        system.add_probe(probe)
        system.run()
        assert probe.snapshot.node_id == 3

    def test_finalize_seals_crash_interval(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=2), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1, at_seal=4)
        system.add_probe(probe)
        system.run()
        probe.finalize()
        log = system.nodes[1].hooks.log
        # everything the victim buffered through seal 4 is queryable
        assert log.bundle(3)  # interval 3 sealed by sync op 4

    def test_observation_is_side_effect_free(self, small_cluster):
        """The probe must not perturb the statistics it observes.

        An earlier revision force-sealed the victim's log at *every*
        seal when ``at_seal`` was None, zero-cost-persisting each
        interval's volatile tail and deflating the victim's flush and
        volatile-peak statistics relative to a probe-free run.
        """
        def run(with_probe):
            system = DsmSystem(
                BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
            )
            if with_probe:
                probe = CrashProbe(node=1)
                system.add_probe(probe)
            system.run()
            return system.nodes[1].hooks.log

        baseline = run(with_probe=False)
        probed = run(with_probe=True)
        assert probed.summary() == baseline.summary()
        assert probed.bytes_flushed == baseline.bytes_flushed
        assert probed.num_flushes == baseline.num_flushes
        assert probed.volatile_peak_bytes == baseline.volatile_peak_bytes

    def test_finalize_is_idempotent_and_skips_later_records(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=2, at_seal=2)
        system.add_probe(probe)
        system.run()
        log = system.nodes[2].hooks.log
        records_before = len(log.persistent_records)
        probe.finalize()
        after_once = len(log.persistent_records)
        probe.finalize()
        assert len(log.persistent_records) == after_once
        # records appended after the crash point stay volatile unless a
        # natural flush already retired them
        assert after_once >= records_before

    def test_capture_all_retains_every_seal(self, small_cluster):
        system = DsmSystem(
            BarrierApp(iters=3), small_cluster, make_hooks_factory("ccl")
        )
        probe = CrashProbe(node=1, capture_all=True)
        system.add_probe(probe)
        system.run()
        assert sorted(probe.snapshots) == [1, 2, 3, 4, 5, 6]
        times = [probe.snapshots[k].time for k in sorted(probe.snapshots)]
        assert times == sorted(times)
