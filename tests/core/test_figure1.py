"""The paper's Figure 1, reproduced event by event.

Figure 1 walks CCL through a three-process scenario: pages x, y, z are
homed at P1, P2, P3.  During failure-free execution P1 acquires the
lock, writes all three pages, and at release flushes diff(y) to P2 and
diff(z) to P3 while logging them locally; the homes record the
incoming-update events.  P2 then acquires the lock, receives
invalidation notices for x and z, faults them in from their homes
(page y is its own home copy -- no fault), writes, and releases.
Figure 1(b) crashes P2 right after its logs are flushed and replays it:
P2 reads its logged notices and update-event records, fetches page z
from P3 and page x together with the interval-A diff of y from P1.

This test scripts exactly that execution and asserts the protocol and
log events the figure names, then runs the recovery and checks the
figure's replay actions (prefetch of x and z, update of home page y
from P1's logged diff, zero replay faults, bit-exact state).
"""

import numpy as np
import pytest

from repro.apps import DsmApplication
from repro.config import ClusterConfig
from repro.core import (
    UpdateEventLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    make_hooks_factory,
    run_recovery_experiment,
)
from repro.dsm import DsmSystem

P1, P2, P3 = 0, 1, 2
PAGE = 4096
LOCK = 0


class ScriptedFigure1(DsmApplication):
    """Both critical sections, ordered as in the figure's time axis."""

    name = "figure1"
    synchronization = "locks and barriers"

    def allocate(self, space, nprocs):
        for name in ("x", "y", "z"):
            space.allocate(name, (8,), np.int64, init=np.zeros(8, np.int64))

    def homes(self, space, nprocs):
        return [P1, P2, P3]

    def program(self, dsm):
        if dsm.rank == P1:
            yield from dsm.acquire(LOCK)  # interval A
            for name in ("x", "y", "z"):
                yield from dsm.write(name)
                dsm.arr(name)[:] += 11
            yield from dsm.release(LOCK)
        elif dsm.rank == P2:
            # ensure P1 wins the lock race: P2 starts later
            yield from dsm.compute(3e5)
            yield from dsm.acquire(LOCK)  # interval B: inva(x, z) arrives
            for name in ("z", "x", "y"):  # the figure's write order
                yield from dsm.write(name)
                dsm.arr(name)[:] += 100
            yield from dsm.release(LOCK)
        yield from dsm.barrier()
        yield from dsm.read("x")
        yield from dsm.read("y")
        yield from dsm.read("z")
        # closing barrier: events that arrived during the previous
        # barrier's wait are still volatile and need one more flush
        yield from dsm.barrier()


@pytest.fixture(scope="module")
def system():
    cfg = ClusterConfig.ultra5(num_nodes=3)
    app = ScriptedFigure1()
    system = DsmSystem(app, cfg, make_hooks_factory("ccl"))
    system.run()
    return system


class TestFailureFreeExecution:
    def test_p1_flushes_and_logs_its_diffs(self, system):
        """'P1 flushes diff(y) to P2 and diff(z) to P3 ... and also
        stores those diffs in its local disk, as required by our CCL.'"""
        own = system.nodes[P1].hooks.log.select(OwnDiffLogRecord)
        assert own, "P1 logged no interval diffs"
        first = own[0]
        diffed_pages = {d.page for d in first.diffs}
        assert diffed_pages == {1, 2}  # y (page 1) and z (page 2)
        # our home-write extension additionally logs diff(x) at its home
        assert {d.page for d in first.home_diffs} == {0}

    def test_homes_record_incoming_update_events(self, system):
        """'P2 and P3 ... record this asynchronous update event.'"""
        ev_p2 = system.nodes[P2].hooks.log.select(UpdateEventLogRecord)
        assert any(ev.writer == P1 and 1 in ev.pages for ev in ev_p2)
        ev_p3 = system.nodes[P3].hooks.log.select(UpdateEventLogRecord)
        assert any(ev.writer == P1 and 2 in ev.pages for ev in ev_p3)

    def test_p2_receives_invalidation_notices_for_x_and_z(self, system):
        """'invalidates its remote copies of pages x and z, according to
        the write-invalidation notices piggybacked with a lock grant.'"""
        notices = system.nodes[P2].hooks.log.select(NoticeLogRecord)
        noticed_pages = {
            p for rec in notices for r in rec.records for p in r.pages
            if r.node == P1
        }
        assert {0, 2} <= noticed_pages  # x and z (y too -- P2 is y's home,
        # so the notice for y is logged but never invalidates anything)

    def test_p2_faults_only_on_x_and_z(self, system):
        """'Accessing page y on P2 causes no page fault because the home
        copy is always valid.'"""
        c = system.nodes[P2].stats.counters
        assert c["page_faults"] == 2

    def test_p2_flushes_diffs_of_x_and_z_but_not_y(self, system):
        """'At the time of lock release, P2 flushes diff of page x to P1
        and diff of page z to P3.'"""
        own = system.nodes[P2].hooks.log.select(OwnDiffLogRecord)
        diffed = {d.page for rec in own for d in rec.diffs}
        assert diffed == {0, 2}
        home_diffed = {d.page for rec in own for d in rec.home_diffs}
        assert home_diffed == {1}  # y, via our home-write extension


class TestFigure1bRecovery:
    def test_p2_recovery_replays_the_figure(self):
        """Figure 1(b): P2 crashes after its logs are flushed; recovery
        reads inva(x,z) + the (diff(y),1,A) record, fetches page z from
        P3 and page x plus diff(y) from P1."""
        cfg = ClusterConfig.ultra5(num_nodes=3)
        res = run_recovery_experiment(
            ScriptedFigure1(), cfg, "ccl", failed_node=P2, at_seal=1
        )
        assert res.ok, res.mismatches
        c = res.replay_stats.counters
        # prefetch rebuilt/fetched exactly pages x and z; no faults
        assert c.get("pages_prefetched", 0) == 2
        assert c.get("replay_faults", 0) == 0
        # the home copy of y was brought forward with P1's logged diff
        assert c.get("replay_diffs_applied", 0) == 1
