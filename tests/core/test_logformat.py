"""Unit tests for the framed on-disk log format.

The frame CRC covers the header prefix *and* the payload, so these
tests flip bits in both regions and expect detection; segment decoding
must recover the longest valid frame prefix of a torn byte string --
the primitive the salvage scan is built on.
"""

import numpy as np
import pytest

from repro.core import (
    FetchLogRecord,
    IncomingDiffLogRecord,
    ModeSwitchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)
from repro.core.logformat import (
    FRAME_HEADER_BYTES,
    SEGMENT_HEADER_BYTES,
    SEGMENT_MAGIC,
    decode_record,
    decode_segment,
    encode_record,
    encode_segment,
)
from repro.dsm import IntervalRecord, VectorClock
from repro.errors import LogFormatError
from repro.memory import Diff, create_diff

VT = VectorClock((3, 1, 0, 7))


def small_diff(page=0, nwords=3):
    return Diff(page, [(8, np.arange(nwords, dtype=np.uint32) + 1)])


def sample_records():
    """One of every record type, covering the optional-field variants."""
    page = np.zeros(256, dtype=np.uint8)
    cur = page.copy()
    cur.view(np.uint32)[5:9] = 0xABCD1234
    real_diff = create_diff(3, page, cur)
    return [
        NoticeLogRecord(2, 0, [
            IntervalRecord(0, 4, VT, (1, 2, 9)),
            IntervalRecord(3, 1, VectorClock((0, 0, 0, 1)), ()),
        ]),
        FetchLogRecord(2, 1, page=5, version=VT),
        FetchLogRecord(2, 0, page=5, version=None),
        PageCopyLogRecord(4, 0, page=7, contents=cur.copy(), version=VT),
        PageCopyLogRecord(4, 0, page=8, contents=None, version=None),
        UpdateEventLogRecord(5, 0, writer=3, writer_index=9, part=1,
                             pages=(1, 2, 9)),
        IncomingDiffLogRecord(6, 2, writer=1, writer_index=4, vt=VT,
                              diffs=[small_diff(0, 4), real_diff]),
        OwnDiffLogRecord(7, 0, vt_index=6, vt=VT, diffs=[small_diff(4)],
                         home_diffs=[small_diff(9, 2)],
                         early=[(1, small_diff(4, 1),
                                 VectorClock((1, 0, 0, 0)))]),
        ModeSwitchLogRecord(0, 0, mode="ml", prev_mode=""),
        ModeSwitchLogRecord(8, 0, mode="ccl", prev_mode="ml",
                            est_replay_ml=1.5e-3, est_replay_ccl=0.25e-3),
    ]


class TestFrames:
    def test_roundtrip_is_lossless(self):
        for rec in sample_records():
            buf = encode_record(rec)
            back, end = decode_record(buf)
            assert end == len(buf)
            assert type(back) is type(rec)
            assert back.interval == rec.interval
            assert back.window == rec.window
            # canonical re-encoding equality pins every payload field
            assert encode_record(back) == buf

    def test_nbytes_is_the_framed_size(self):
        for rec in sample_records():
            assert rec.nbytes == len(encode_record(rec))
            assert rec.nbytes >= FRAME_HEADER_BYTES

    def test_header_bit_flip_is_detected(self):
        buf = bytearray(encode_record(sample_records()[0]))
        for off in range(FRAME_HEADER_BYTES):
            for bit in range(8):
                damaged = bytearray(buf)
                damaged[off] ^= 1 << bit
                with pytest.raises(LogFormatError):
                    decode_record(bytes(damaged))

    def test_payload_bit_flip_is_detected(self):
        for rec in sample_records():
            buf = bytearray(encode_record(rec))
            for off in (FRAME_HEADER_BYTES, len(buf) // 2, len(buf) - 1):
                damaged = bytearray(buf)
                damaged[off] ^= 0x40
                with pytest.raises(LogFormatError):
                    decode_record(bytes(damaged))

    def test_truncated_frame_raises(self):
        buf = encode_record(sample_records()[0])
        with pytest.raises(LogFormatError):
            decode_record(buf[: FRAME_HEADER_BYTES - 1])
        with pytest.raises(LogFormatError):
            decode_record(buf[:-1])


class TestSegments:
    def test_roundtrip(self):
        records = sample_records()
        data = encode_segment(9, records)
        back, consumed, err = decode_segment(data)
        assert err is None
        assert consumed == len(data)
        assert [encode_record(r) for r in back] == [
            encode_record(r) for r in records
        ]

    def test_size_is_header_plus_frames(self):
        records = sample_records()
        data = encode_segment(0, records)
        assert len(data) == SEGMENT_HEADER_BYTES + sum(
            r.nbytes for r in records
        )

    def test_bad_magic_yields_nothing(self):
        data = bytearray(encode_segment(0, sample_records()[:2]))
        data[0] ^= 0xFF
        recs, consumed, err = decode_segment(bytes(data))
        assert recs == [] and consumed == 0
        assert err is not None and "magic" in err

    def test_short_header_yields_nothing(self):
        recs, consumed, err = decode_segment(b"\x01" * 7)
        assert recs == [] and consumed == 0 and err is not None

    def test_torn_prefix_recovers_whole_frames(self):
        """Every torn length recovers exactly the frames that fit."""
        records = sample_records()
        data = encode_segment(3, records)
        sizes = [r.nbytes for r in records]
        bounds = [SEGMENT_HEADER_BYTES]
        for s in sizes:
            bounds.append(bounds[-1] + s)
        for cut in range(len(data) + 1):
            recs, _consumed, err = decode_segment(data[:cut])
            if cut < SEGMENT_HEADER_BYTES:
                assert recs == []
                continue
            expect = sum(1 for b in bounds[1:] if b <= cut)
            assert len(recs) == expect, f"cut={cut}"
            assert (err is None) == (cut == len(data))

    def test_mid_segment_flip_keeps_the_prefix(self):
        records = sample_records()
        data = bytearray(encode_segment(1, records))
        # damage the third frame's payload: frames 0-1 must survive
        off = SEGMENT_HEADER_BYTES + records[0].nbytes + records[1].nbytes
        data[off + FRAME_HEADER_BYTES] ^= 0x01
        recs, _consumed, err = decode_segment(bytes(data))
        assert len(recs) == 2
        assert err is not None

    def test_magic_is_seg1(self):
        assert SEGMENT_MAGIC.to_bytes(4, "big") == b"SEG1"
