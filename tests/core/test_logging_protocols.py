"""Behavioural tests for the ML and CCL logging protocols.

These run the same applications under all three protocols and check the
paper's qualitative claims: CCL's log is a small fraction of ML's, its
flush is overlapped with communication, and neither protocol perturbs
the application's results.
"""

import pytest

from repro.core import (
    CoherenceCentricLogging,
    FetchLogRecord,
    IncomingDiffLogRecord,
    MessageLogging,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
    make_hooks,
    make_hooks_factory,
)
from repro.dsm import DsmSystem
from repro.errors import ConfigError
from tests.core.conftest import BarrierApp, LockApp


def run(app, config, protocol):
    system = DsmSystem(app, config, make_hooks_factory(protocol))
    return system.run(), system


class TestFactories:
    def test_make_hooks_names(self):
        assert make_hooks("none").name == "none"
        assert isinstance(make_hooks("ml"), MessageLogging)
        assert isinstance(make_hooks("ccl"), CoherenceCentricLogging)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigError):
            make_hooks("magic")

    def test_factory_yields_fresh_instances(self):
        f = make_hooks_factory("ccl")
        assert f(0) is not f(1)


class TestExecutionOverheadOrdering:
    def test_none_le_ccl_le_ml(self, small_cluster):
        times = {}
        for proto in ("none", "ml", "ccl"):
            result, _ = run(BarrierApp(iters=4), small_cluster, proto)
            times[proto] = result.total_time
        assert times["none"] <= times["ccl"] <= times["ml"]
        # and logging costs something at all
        assert times["ml"] > times["none"]

    def test_protocols_do_not_change_results(self, small_cluster):
        # BarrierApp asserts data internally; completing under each
        # protocol proves transparency
        for proto in ("none", "ml", "ccl"):
            run(BarrierApp(iters=3), small_cluster, proto)
            run(LockApp(iters=2), small_cluster, proto)


class TestLogSizes:
    def test_ccl_log_is_small_fraction_of_ml(self, small_cluster):
        ml, _ = run(BarrierApp(iters=4), small_cluster, "ml")
        ccl, _ = run(BarrierApp(iters=4), small_cluster, "ccl")
        assert 0 < ccl.total_log_bytes < 0.5 * ml.total_log_bytes

    def test_ml_mean_flush_larger_than_ccl(self, small_cluster):
        ml, _ = run(BarrierApp(iters=4), small_cluster, "ml")
        ccl, _ = run(BarrierApp(iters=4), small_cluster, "ccl")
        assert ml.mean_flush_bytes > ccl.mean_flush_bytes

    def test_no_logging_logs_nothing(self, small_cluster):
        result, _ = run(BarrierApp(iters=2), small_cluster, "none")
        assert result.num_flushes == 0
        assert result.total_log_bytes == 0


class TestLogContents:
    def test_ml_logs_page_contents_ccl_logs_metadata(self, small_cluster):
        _, sys_ml = run(BarrierApp(iters=2), small_cluster, "ml")
        _, sys_ccl = run(BarrierApp(iters=2), small_cluster, "ccl")
        ml_log = sys_ml.nodes[0].hooks.log
        ccl_log = sys_ccl.nodes[0].hooks.log
        assert ml_log.select(PageCopyLogRecord)
        assert not ml_log.select(FetchLogRecord)
        assert ccl_log.select(FetchLogRecord)
        assert not ccl_log.select(PageCopyLogRecord)

    def test_ml_logs_incoming_diffs_ccl_logs_events(self, small_cluster):
        _, sys_ml = run(BarrierApp(iters=2), small_cluster, "ml")
        _, sys_ccl = run(BarrierApp(iters=2), small_cluster, "ccl")
        # every node homes some written pages in BarrierApp
        ml_in = sum(
            len(n.hooks.log.select(IncomingDiffLogRecord)) for n in sys_ml.nodes
        )
        ccl_ev = sum(
            len(n.hooks.log.select(UpdateEventLogRecord)) for n in sys_ccl.nodes
        )
        assert ml_in > 0 and ccl_ev > 0
        # event records are tiny; incoming-diff records carry contents
        ml_bytes = sum(
            r.nbytes
            for n in sys_ml.nodes
            for r in n.hooks.log.select(IncomingDiffLogRecord)
        )
        ccl_bytes = sum(
            r.nbytes
            for n in sys_ccl.nodes
            for r in n.hooks.log.select(UpdateEventLogRecord)
        )
        assert ccl_bytes < ml_bytes

    def test_ccl_logs_own_diffs_ml_does_not(self, small_cluster):
        _, sys_ml = run(BarrierApp(iters=2), small_cluster, "ml")
        _, sys_ccl = run(BarrierApp(iters=2), small_cluster, "ccl")
        assert any(n.hooks.log.select(OwnDiffLogRecord) for n in sys_ccl.nodes)
        assert not any(n.hooks.log.select(OwnDiffLogRecord) for n in sys_ml.nodes)

    def test_both_log_notices(self, small_cluster):
        for proto in ("ml", "ccl"):
            _, system = run(BarrierApp(iters=2), small_cluster, proto)
            assert any(n.hooks.log.select(NoticeLogRecord) for n in system.nodes)

    def test_window_tags_recorded_for_lock_programs(self, small_cluster):
        _, system = run(LockApp(iters=2), small_cluster, "ccl")
        tagged = [
            r
            for n in system.nodes
            for r in n.hooks.log.select(NoticeLogRecord)
            if r.window > 0
        ]
        assert tagged, "mid-interval acquires must carry window tags"


class TestFlushBehaviour:
    def test_ccl_flushes_once_per_nonempty_interval(self, small_cluster):
        app = BarrierApp(iters=3)
        _, system = run(app, small_cluster, "ccl")
        for node in system.nodes:
            # one flush per barrier (each interval writes and logs)
            assert node.hooks.log.num_flushes == pytest.approx(
                node.stats.counters["barriers"], abs=2
            )

    def test_ml_critical_path_flush_time_exceeds_ccl(self, small_cluster):
        ml, _ = run(BarrierApp(iters=4), small_cluster, "ml")
        ccl, _ = run(BarrierApp(iters=4), small_cluster, "ccl")
        ml_flush = ml.aggregate.time.get("log_flush")
        ccl_flush = ccl.aggregate.time.get("log_flush")
        assert ml_flush > ccl_flush

    def test_ccl_overlap_hides_disk_latency(self, small_cluster):
        """Critical-path flush cost is far below the disk's busy time."""
        _, system = run(BarrierApp(iters=4), small_cluster, "ccl")
        disk_busy = sum(d.busy_time for d in system.disks)
        on_path = sum(n.stats.time.get("log_flush") for n in system.nodes)
        assert disk_busy > 0
        assert on_path < 0.6 * disk_busy

    def test_ml_disk_time_fully_on_critical_path(self, small_cluster):
        _, system = run(BarrierApp(iters=4), small_cluster, "ml")
        disk_busy = sum(d.busy_time for d in system.disks)
        on_path = sum(n.stats.time.get("log_flush") for n in system.nodes)
        assert on_path == pytest.approx(disk_busy, rel=0.05)

    def test_home_diff_ablation_knob(self, small_cluster):
        """CCL without home-write logging produces a smaller log."""
        with_hd = DsmSystem(
            BarrierApp(iters=3), small_cluster,
            lambda _i: CoherenceCentricLogging(log_home_diffs=True),
        ).run()
        without_hd = DsmSystem(
            BarrierApp(iters=3), small_cluster,
            lambda _i: CoherenceCentricLogging(log_home_diffs=False),
        ).run()
        assert without_hd.total_log_bytes <= with_hd.total_log_bytes
