"""Unit tests for log-record size accounting.

Sizes are the *framed* on-disk sizes of :mod:`repro.core.logformat`:
a 16-byte frame header plus a payload whose variable-width fields
(vector clocks, page lists, diff lists) carry explicit counts.
``test_logformat`` pins ``nbytes == len(encode_record(rec))``; these
tests pin the arithmetic itself.
"""

import numpy as np

from repro.core import (
    FetchLogRecord,
    IncomingDiffLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    PageCopyLogRecord,
    UpdateEventLogRecord,
)
from repro.core.logrecords import FRAME_HEADER_BYTES
from repro.dsm import IntervalRecord, VectorClock
from repro.memory import Diff

VT8 = VectorClock.zero(8)
#: Encoded size of an 8-wide vector clock: u32 count + 8 components.
VT8_BYTES = 4 + 32


def small_diff(page=0, nwords=3):
    return Diff(page, [(0, np.arange(nwords, dtype=np.uint32))])


def test_notice_record_size_sums_interval_records():
    r1 = IntervalRecord(0, 0, VT8, (1, 2))
    r2 = IntervalRecord(1, 0, VT8, (3,))
    # u32 record count; each interval record pays a 4-byte vector count
    # prefix over its wire size
    rec = NoticeLogRecord(0, 0, [r1, r2])
    assert rec.nbytes == (
        FRAME_HEADER_BYTES + 4 + (r1.nbytes + 4) + (r2.nbytes + 4)
    )


def test_fetch_record_is_metadata_sized():
    rec = FetchLogRecord(0, 0, page=7, version=VT8)
    assert rec.nbytes == FRAME_HEADER_BYTES + 4 + VT8_BYTES
    # the crucial CCL property: tiny compared to a page
    assert rec.nbytes < 64


def test_page_copy_record_carries_full_page():
    contents = np.zeros(4096, dtype=np.uint8)
    rec = PageCopyLogRecord(0, 0, page=7, contents=contents, version=VT8)
    assert rec.nbytes == FRAME_HEADER_BYTES + 8 + VT8_BYTES + 4096
    # the ML burden: two orders of magnitude bigger than a fetch record
    assert rec.nbytes > 50 * FetchLogRecord(0, 0, page=7, version=VT8).nbytes


def test_update_event_record_is_4_bytes_per_page():
    rec = UpdateEventLogRecord(
        0, 0, writer=3, writer_index=5, part=0, pages=(1, 2, 9)
    )
    assert rec.nbytes == FRAME_HEADER_BYTES + 16 + 4 * 3


def test_incoming_diff_record_carries_contents():
    d1, d2 = small_diff(0, 4), small_diff(1, 2)
    rec = IncomingDiffLogRecord(0, 0, writer=1, writer_index=0, vt=VT8,
                                diffs=[d1, d2])
    assert rec.nbytes == (
        FRAME_HEADER_BYTES + 12 + VT8_BYTES + d1.nbytes + d2.nbytes
    )


def test_own_diff_record_includes_home_diffs_and_lookup():
    d = small_diff(4)
    h = small_diff(9)
    rec = OwnDiffLogRecord(0, 0, vt_index=2, vt=VT8, diffs=[d], home_diffs=[h])
    assert rec.nbytes == (
        FRAME_HEADER_BYTES + 16 + VT8_BYTES + d.nbytes + h.nbytes
    )
    assert rec.find(4) == (d, VT8)
    assert rec.find(9) == (h, VT8)
    assert rec.find(123) is None


def test_own_diff_record_early_parts_lookup():
    d_end = small_diff(4)
    d_early = small_diff(4, nwords=1)
    early_vt = VectorClock((1,) + (0,) * 7)
    rec = OwnDiffLogRecord(
        0, 0, vt_index=2, vt=VT8, diffs=[d_end], early=[(1, d_early, early_vt)]
    )
    assert rec.find(4, part=0) == (d_end, VT8)
    assert rec.find(4, part=1) == (d_early, early_vt)
    assert rec.find(4, part=2) is None
    assert rec.nbytes == (
        FRAME_HEADER_BYTES + 16 + VT8_BYTES + d_end.nbytes
        + 4 + d_early.nbytes + (4 + early_vt.nbytes)
    )
