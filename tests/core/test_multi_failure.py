"""Tests for multi-node failure recovery (extension beyond the paper).

CCL's durable own-diff logs are what make this possible: a crashed
peer's memory is lost, but its log can still serve the diffs and
histories other victims need.  Every victim's recovered state is
verified bit-exactly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import run_multi_recovery_experiment
from repro.errors import RecoveryError
from tests.core.conftest import BarrierApp, LockApp

CFG8 = ClusterConfig.ultra5(num_nodes=8)


class TestMultiFailure:
    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    @pytest.mark.parametrize("failed", [(0, 1), (2, 5), (1, 3, 6)])
    def test_workload_multi_recovery_bit_exact(self, protocol, failed):
        res = run_multi_recovery_experiment(
            make_app("fft3d"), CFG8, protocol, failed_nodes=failed
        )
        assert res.ok, (protocol, failed, res.mismatches)
        assert set(res.recovery_times) == set(failed)
        assert res.recovery_time == max(res.recovery_times.values())

    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    def test_lock_app_multi_recovery(self, protocol, small_cluster):
        res = run_multi_recovery_experiment(
            LockApp(iters=2), small_cluster, protocol, failed_nodes=(0, 2)
        )
        assert res.ok, res.mismatches

    def test_victims_serve_each_other_under_ccl(self, small_cluster):
        """With two neighbouring victims, each needs the other's diffs."""
        res = run_multi_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "ccl", failed_nodes=(1, 2)
        )
        assert res.ok, res.mismatches

    def test_majority_failure(self):
        """Five of eight nodes die; the three survivors' state plus the
        victims' logs still suffice."""
        res = run_multi_recovery_experiment(
            make_app("sor"), CFG8, "ccl", failed_nodes=(0, 2, 3, 5, 7)
        )
        assert res.ok, res.mismatches

    def test_all_nodes_failing_rejected(self, small_cluster):
        with pytest.raises(RecoveryError):
            run_multi_recovery_experiment(
                BarrierApp(iters=2), small_cluster, "ccl",
                failed_nodes=(0, 1, 2, 3),
            )

    def test_duplicate_failed_nodes_rejected(self, small_cluster):
        with pytest.raises(RecoveryError):
            run_multi_recovery_experiment(
                BarrierApp(iters=2), small_cluster, "ccl", failed_nodes=(1, 1)
            )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        victims=st.sets(st.integers(0, 3), min_size=1, max_size=3),
        protocol=st.sampled_from(["ml", "ccl"]),
        plan_seed=st.integers(0, 2),
    )
    def test_random_victim_sets_recover_bit_exact(
        self, victims, protocol, plan_seed
    ):
        """Property: any victim subset recovers exactly, both protocols."""
        from repro.config import ClusterConfig as CC

        cfg = CC.ultra5(num_nodes=4, page_size=256)
        app = BarrierApp(iters=2 + plan_seed)
        res = run_multi_recovery_experiment(
            app, cfg, protocol, failed_nodes=tuple(sorted(victims))
        )
        assert res.ok, (victims, protocol, res.mismatches)

    def test_concurrent_replay_not_slower_than_worst_single(self, small_cluster):
        """Victims replay concurrently: wall time ~ the slowest victim,
        not the sum."""
        from repro.core import run_recovery_experiment

        single = run_recovery_experiment(
            BarrierApp(iters=3, flops=1e6), small_cluster, "ccl", failed_node=1
        )
        multi = run_multi_recovery_experiment(
            BarrierApp(iters=3, flops=1e6), small_cluster, "ccl",
            failed_nodes=(1, 2),
        )
        assert single.ok and multi.ok
        assert multi.recovery_time < 1.7 * single.recovery_time
