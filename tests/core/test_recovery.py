"""Integration tests for crash recovery (both protocols).

The central invariant: replaying a crashed node from its log must
reproduce its memory image, page states, page versions, and vector
clock **bit-for-bit** as they were at the crash point -- and do so
faster than re-executing the program.
"""

import pytest

from repro.core import run_recovery_experiment
from repro.dsm import DsmSystem
from repro.errors import RecoveryError
from tests.core.conftest import BarrierApp, LockApp


def reexecution_time(app, config):
    """The paper's baseline: rerun from the global initial state."""
    return DsmSystem(app, config).run().total_time


class TestRecoveryCorrectness:
    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    @pytest.mark.parametrize("failed_node", [0, 1, 3])
    def test_barrier_app_recovers_exact_state(
        self, small_cluster, protocol, failed_node
    ):
        res = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, protocol, failed_node
        )
        assert res.ok, res.mismatches
        assert res.recovery_time > 0

    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    @pytest.mark.parametrize("failed_node", [0, 2])
    def test_lock_app_recovers_exact_state(
        self, small_cluster, protocol, failed_node
    ):
        res = run_recovery_experiment(
            LockApp(iters=2), small_cluster, protocol, failed_node
        )
        assert res.ok, res.mismatches

    @pytest.mark.parametrize("protocol", ["ml", "ccl"])
    def test_recovery_at_intermediate_seal(self, small_cluster, protocol):
        res = run_recovery_experiment(
            BarrierApp(iters=4, flops=1e6, imbalance=2.0), small_cluster, protocol, failed_node=1, at_seal=3
        )
        assert res.ok, res.mismatches
        assert res.at_seal == 3

    def test_recovery_time_grows_with_crash_point(self, small_cluster):
        times = []
        for seal in (2, 4, 6):
            res = run_recovery_experiment(
                BarrierApp(iters=4, flops=1e6, imbalance=2.0), small_cluster, "ccl",
                failed_node=1, at_seal=seal,
            )
            assert res.ok, res.mismatches
            times.append(res.recovery_time)
        assert times[0] < times[1] < times[2]


class TestRecoverySpeed:
    def test_recovery_faster_than_reexecution(self, small_cluster):
        app = BarrierApp(iters=4, flops=1e6, imbalance=2.0)
        t_reexec = reexecution_time(BarrierApp(iters=4, flops=1e6, imbalance=2.0), small_cluster)
        for protocol in ("ml", "ccl"):
            res = run_recovery_experiment(
                BarrierApp(iters=4, flops=1e6, imbalance=2.0), small_cluster, protocol, failed_node=1
            )
            assert res.ok, res.mismatches
            assert res.recovery_time < t_reexec, protocol

    def test_ccl_recovery_beats_ml_recovery(self, small_cluster):
        """With enough pages per interval, batched prefetch beats the
        per-miss disk reads of ML-recovery (the paper's regime)."""
        app = lambda: BarrierApp(  # noqa: E731
            iters=4, elems=2048, flops=1e6, imbalance=2.0
        )
        ml = run_recovery_experiment(app(), small_cluster, "ml", failed_node=1)
        ccl = run_recovery_experiment(app(), small_cluster, "ccl", failed_node=1)
        assert ml.ok and ccl.ok
        assert ccl.recovery_time < ml.recovery_time

    def test_ml_pays_memory_miss_idle_ccl_does_not(self, small_cluster):
        ml = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "ml", failed_node=1
        )
        ccl = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "ccl", failed_node=1
        )
        # ML replays faults against the disk log
        assert ml.replay_stats.counters.get("replay_faults", 0) > 0
        assert ml.replay_stats.time.get("miss_read") > 0
        # CCL prefetches everything: zero replay faults by construction
        assert ccl.replay_stats.counters.get("replay_faults", 0) == 0
        assert ccl.replay_stats.counters.get("pages_prefetched", 0) > 0

    def test_ccl_reconstructs_old_versions_when_home_advanced(self, small_cluster):
        """Crashing mid-run forces the checkpoint+diff reconstruction path."""
        res = run_recovery_experiment(
            BarrierApp(iters=4, flops=1e6, imbalance=2.0), small_cluster, "ccl", failed_node=1, at_seal=3
        )
        assert res.ok, res.mismatches
        assert res.replay_stats.counters.get("prefetch_rebuilt", 0) > 0

    def test_prefetch_modes_cover_all_pages(self, small_cluster):
        """Every prefetched page is served warm (delta), direct, or
        rebuilt from a checkpoint -- and none of them faults."""
        res = run_recovery_experiment(
            BarrierApp(iters=3), small_cluster, "ccl", failed_node=1
        )
        assert res.ok
        c = res.replay_stats.counters
        modes = (
            c.get("prefetch_direct", 0)
            + c.get("prefetch_delta", 0)
            + c.get("prefetch_rebuilt", 0)
        )
        assert modes == c.get("pages_prefetched", 0) > 0
        assert c.get("replay_faults", 0) == 0


class TestRecoveryErrors:
    def test_recovery_requires_logging_protocol(self, small_cluster):
        with pytest.raises(RecoveryError):
            run_recovery_experiment(
                BarrierApp(iters=2), small_cluster, "none", failed_node=0
            )

    def test_unreachable_seal_raises(self, small_cluster):
        with pytest.raises(RecoveryError, match="never reached"):
            run_recovery_experiment(
                BarrierApp(iters=2), small_cluster, "ccl",
                failed_node=0, at_seal=999,
            )
