"""Exhaustive crash-point sweep: recovery must be bit-exact at *every*
sealed interval of a real workload, under both protocols.

This complements the randomized tests with full coverage of one
program's crash points -- early crashes (mostly cold reconstruction),
mid-run crashes (delta reconstruction against advanced homes), and the
final crash (direct serves).
"""

import pytest

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import run_recovery_experiment
from repro.dsm import DsmSystem

CFG = ClusterConfig.ultra5(num_nodes=4)


def total_seals(app_name, node, **kw):
    system = DsmSystem(make_app(app_name, **kw), CFG)
    system.run()
    return system.nodes[node].seal_count


@pytest.mark.parametrize("protocol", ["ml", "ccl"])
def test_every_crash_point_of_sor_recovers(protocol):
    kw = dict(n=32, iters=3)
    seals = total_seals("sor", 1, **kw)
    assert seals >= 6
    for seal in range(1, seals + 1):
        res = run_recovery_experiment(
            make_app("sor", **kw), CFG, protocol, failed_node=1, at_seal=seal
        )
        assert res.ok, (protocol, seal, res.mismatches[:3])


@pytest.mark.parametrize("protocol", ["ml", "ccl"])
def test_every_crash_point_of_water_recovers(protocol):
    """Water adds lock windows: every seal includes mid-interval
    acquires replayed from window-tagged notices."""
    kw = dict(molecules=32, steps=2)
    seals = total_seals("water", 2, **kw)
    for seal in range(1, seals + 1):
        res = run_recovery_experiment(
            make_app("water", **kw), CFG, protocol, failed_node=2, at_seal=seal
        )
        assert res.ok, (protocol, seal, res.mismatches[:3])


def test_every_node_recovers_at_midpoint():
    """Crash each rank in turn at the midpoint of MG."""
    kw = dict(n=16, cycles=2)
    for node in range(CFG.num_nodes):
        seals = total_seals("mg", node, **kw)
        res = run_recovery_experiment(
            make_app("mg", **kw), CFG, "ccl",
            failed_node=node, at_seal=max(1, seals // 2),
        )
        assert res.ok, (node, res.mismatches[:3])
