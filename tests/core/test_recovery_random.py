"""Property-based recovery testing.

Random data-race-free programs + random crash points: recovery must
reproduce the victim's crash-point state exactly, for both logging
protocols.  This is the strongest correctness net in the suite -- it
exercises diff reconstruction, version-exact prefetch, update-event
replay, and window-tagged notice replay under arbitrary interleavings.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.core import run_recovery_experiment

NPROCS = 4
ELEMS = 256
CHUNKS = 8
CHUNK = ELEMS // CHUNKS


class PlanApp:
    """Executes a random plan of write rounds separated by barriers."""

    name = "plan-app"

    def __init__(self, plan, with_locks=False):
        self.plan = plan
        self.with_locks = with_locks

    def allocate(self, space, nprocs):
        space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))
        if self.with_locks:
            space.allocate("c", (4,), np.int64, init=np.zeros(4, np.int64))

    def program(self, dsm):
        for rnd, owners in enumerate(self.plan):
            for chunk, owner in enumerate(owners):
                if owner == dsm.rank:
                    lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo : hi : 1 + (rnd % 3)] = rnd * 100 + owner + 1
            if self.with_locks and rnd % 2 == 0:
                c = rnd % 4
                yield from dsm.acquire(c)
                yield from dsm.read("c", c, c + 1)
                yield from dsm.write("c", c, c + 1)
                dsm.arr("c")[c] += dsm.rank + 1
                yield from dsm.release(c)
            yield from dsm.barrier()
            # read a rotating chunk (may fault, may hit cache) -- but
            # only one that nobody writes in the NEXT round, otherwise
            # the read would race (release consistency leaves it
            # unordered, so even the failure-free outcome is undefined)
            nxt = self.plan[rnd + 1] if rnd + 1 < len(self.plan) else [None] * CHUNKS
            for probe in range(CHUNKS):
                chunk = (dsm.rank + rnd + probe) % CHUNKS
                if nxt[chunk] is None:
                    yield from dsm.read("x", chunk * CHUNK, (chunk + 1) * CHUNK)
                    break


plans = st.lists(
    st.lists(
        st.one_of(st.none(), st.integers(0, NPROCS - 1)),
        min_size=CHUNKS,
        max_size=CHUNKS,
    ),
    min_size=2,
    max_size=4,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    plan=plans,
    protocol=st.sampled_from(["ml", "ccl"]),
    failed_node=st.integers(0, NPROCS - 1),
    data=st.data(),
)
def test_random_program_recovery_is_bit_exact(plan, protocol, failed_node, data):
    cfg = ClusterConfig.ultra5(num_nodes=NPROCS, page_size=256)
    total_seals = len(plan)  # barrier-only programs: one seal per round
    at_seal = data.draw(st.integers(1, total_seals), label="at_seal")
    res = run_recovery_experiment(
        PlanApp(plan), cfg, protocol, failed_node=failed_node, at_seal=at_seal
    )
    assert res.ok, (protocol, failed_node, at_seal, res.mismatches)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    plan=plans,
    protocol=st.sampled_from(["ml", "ccl"]),
    failed_node=st.integers(0, NPROCS - 1),
)
def test_random_lock_program_recovery_is_bit_exact(plan, protocol, failed_node):
    """Lock-bearing programs exercise window-tagged notice replay."""
    cfg = ClusterConfig.ultra5(num_nodes=NPROCS, page_size=256)
    res = run_recovery_experiment(
        PlanApp(plan, with_locks=True), cfg, protocol, failed_node=failed_node
    )
    assert res.ok, (protocol, failed_node, res.mismatches)


@pytest.mark.parametrize("protocol", ["ml", "ccl"])
def test_recovery_with_false_sharing(protocol):
    """All ranks write disjoint words of the same page; recovery must
    reassemble the multi-writer merges exactly."""
    plan = [[r % NPROCS for r in range(CHUNKS)] for _ in range(3)]
    cfg = ClusterConfig.ultra5(num_nodes=NPROCS, page_size=1024)  # 1 page
    res = run_recovery_experiment(PlanApp(plan), cfg, protocol, failed_node=2)
    assert res.ok, res.mismatches
