"""Quorum-replicated homes: placement, epoch fencing, byte identity.

The replication layer must be invisible at ``replication=1`` (the
exact unreplicated code path runs -- pinned here by comparing a
``failover``-protocol run at k=1 against plain CCL for every paper
app), deterministic in its placement, zone-aware when fault domains
exist, and split-brain-free under its epoch fence.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.replication import (
    MirrorState,
    ReplicaGroup,
    ReplicaUpdate,
    Replicator,
    ZoneFaultSpec,
    plan_groups,
    validate_replication,
)
from repro.errors import ConfigError, RecoveryError
from repro.harness.runner import run_application


class TestValidation:
    def test_replication_bounds(self):
        validate_replication(1, 4)
        validate_replication(4, 4)
        with pytest.raises(ConfigError, match="must be >= 1"):
            validate_replication(0, 4)
        with pytest.raises(ConfigError, match="exceeds the cluster"):
            validate_replication(5, 4)

    def test_zone_spec_rejects_unknown_zone(self):
        config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
        with pytest.raises(ConfigError, match="unknown zone 7"):
            ZoneFaultSpec(zone_kill=7).validate(config)
        with pytest.raises(ConfigError, match="unknown zone 9"):
            ZoneFaultSpec(zone_partition=(0, 9)).validate(config)

    def test_zone_spec_rejects_equal_partition_sides(self):
        config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
        with pytest.raises(ConfigError, match="sides must differ"):
            ZoneFaultSpec(zone_partition=(1, 1)).validate(config)

    def test_zone_spec_rejects_killing_every_node(self):
        config = ClusterConfig.ultra5(num_nodes=4)  # one implicit zone
        with pytest.raises(ConfigError, match="at least one zone"):
            ZoneFaultSpec(zone_kill=0).validate(config)

    def test_valid_spec_passes_and_any_reflects_content(self):
        config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
        spec = ZoneFaultSpec(zone_kill=1, zone_partition=(0, 1))
        spec.validate(config)
        assert spec.any
        assert not ZoneFaultSpec().any


class TestPlacement:
    def test_ring_placement_without_zones(self):
        groups = plan_groups(4, 2)
        assert {p: g.followers for p, g in groups.items()} == {
            0: (1,), 1: (2,), 2: (3,), 3: (0,),
        }

    def test_k1_has_no_followers(self):
        groups = plan_groups(4, 1)
        assert all(g.followers == () for g in groups.values())

    def test_zone_aware_first_follower_is_out_of_zone(self):
        zones = ClusterConfig.ultra5(num_nodes=8).with_zones(2).zones
        groups = plan_groups(8, 2, zones)
        for p, g in groups.items():
            assert zones[g.followers[0]] != zones[p], (
                f"primary {p} (zone {zones[p]}) mirrored only in-zone"
            )

    def test_single_zone_kill_never_orphans_a_group(self):
        config = ClusterConfig.ultra5(num_nodes=8).with_zones(3)
        groups = plan_groups(8, 2, config.zones)
        for z in set(config.zones):
            dead = set(config.nodes_in_zone(z))
            for g in groups.values():
                alive = {g.primary, *g.followers} - dead
                assert alive, f"zone {z} wiped the whole group of {g.primary}"

    def test_placement_is_deterministic(self):
        zones = (0, 1, 0, 1, 0, 1)
        a = plan_groups(6, 3, zones)
        b = plan_groups(6, 3, zones)
        assert {p: g.followers for p, g in a.items()} == \
               {p: g.followers for p, g in b.items()}

    def test_primary_cannot_follow_itself(self):
        with pytest.raises(ConfigError, match="cannot follow"):
            ReplicaGroup(2, (1, 2))


class TestQuorumAndPromotion:
    def test_quorum_math(self):
        assert ReplicaGroup(0, (1,)).quorum == 2        # k=2: both
        assert ReplicaGroup(0, (1,)).acks_needed == 1
        assert ReplicaGroup(0, (1, 2)).quorum == 2      # k=3: majority
        assert ReplicaGroup(0, (1, 2)).acks_needed == 1

    def test_promote_bumps_epoch_once(self):
        g = ReplicaGroup(0, (1, 2))
        assert g.promote(1, dead=(0,)) == 1
        assert g.promoted == 1 and g.epoch == 1

    def test_duplicate_promotion_refused(self):
        g = ReplicaGroup(0, (1, 2))
        g.promote(1, dead=(0,))
        with pytest.raises(RecoveryError, match="duplicate promotion"):
            g.promote(2, dead=(0,))

    def test_non_follower_and_dead_candidates_refused(self):
        g = ReplicaGroup(0, (1, 2))
        with pytest.raises(RecoveryError, match="not a follower"):
            g.promote(3, dead=(0,))
        with pytest.raises(RecoveryError, match="dead follower"):
            g.promote(1, dead=(0, 1))


class _Node:
    def __init__(self, node_id):
        self.id = node_id


class TestEpochFencing:
    """The follower-side fence: stale primaries are rejected, higher
    epochs win, and a stale promotion claim cannot regress the floor."""

    def _follower(self, primary=0):
        rep = Replicator(ReplicaGroup(1, (2,)))
        rep.bind(_Node(1))
        rep.mirrors[primary] = MirrorState(primary)
        return rep

    def test_stale_primary_update_rejected(self):
        rep = self._follower()
        rep.mirrors[0].epoch = 2  # fenced at epoch 2 already
        stale = ReplicaUpdate(0, 1, seal=5, upto=9, entries=[])
        assert rep.apply_update(stale) is False
        st = rep.mirrors[0]
        assert st.rejected == 1 and st.accepted == 0
        assert st.seal == 0 and st.upto == 0  # nothing applied

    def test_current_epoch_update_accepted(self):
        rep = self._follower()
        upd = ReplicaUpdate(0, 0, seal=3, upto=4, entries=[])
        assert rep.apply_update(upd, now=1.5) is True
        st = rep.mirrors[0]
        assert st.accepted == 1 and st.seal == 3 and st.upto == 4
        assert st.journal == [(3, 4, 1.5, [])]

    def test_fence_raises_floor_and_rejects_old_primary(self):
        rep = self._follower()
        assert rep.fence(0, epoch=1) is True
        assert rep.apply_update(ReplicaUpdate(0, 0, 1, 1, [])) is False
        assert rep.apply_update(ReplicaUpdate(0, 1, 1, 1, [])) is True

    def test_stale_promotion_claim_refused(self):
        rep = self._follower()
        rep.fence(0, epoch=3)
        assert rep.fence(0, epoch=2) is False
        assert rep.mirrors[0].epoch == 3  # floor never regresses

    def test_fence_is_noop_for_non_followers(self):
        rep = self._follower(primary=0)
        assert rep.fence(5, epoch=9) is True  # not mirroring node 5


class TestMirrorState:
    def test_apply_entries_needs_a_base_frame(self):
        st = MirrorState(0)
        from repro.memory.diff import Diff
        from repro.dsm.interval import VectorClock

        d = Diff(page=3, runs=((0, np.zeros(4, dtype=np.uint8)),))
        with pytest.raises(RecoveryError, match="no base frame"):
            st.apply_entries([(1, 0, 0, VectorClock.zero(2), [d])])


@pytest.mark.parametrize("app", ["fft3d", "mg", "shallow", "water"])
def test_replication_1_is_byte_identical_to_seed(app):
    """The failover protocol at k=1 runs the seed's CCL execution: no
    mirror traffic, no replicators, identical timing, wire traffic, and
    memory images.  (The one documented delta is on disk: failover logs
    content-free home writes as *empty* diff records so its metadata
    suffix is complete -- see ``FailoverLogging.log_empty_home_diffs``
    -- so its log may carry a few more framed bytes, never fewer.)"""
    config = ClusterConfig.ultra5(num_nodes=4)
    base, base_sys = run_application(app, "ccl", config, "test")
    repl, repl_sys = run_application(
        app, "failover", config, "test", replication=1,
    )
    assert repl.replication == 1
    assert repl.replication_stats == []
    assert all(
        getattr(n, "replicator", None) is None for n in repl_sys.nodes
    )
    assert repl.total_time == base.total_time
    assert repl.network_bytes == base.network_bytes
    assert repl.network_msgs == base.network_msgs
    assert repl.num_flushes == base.num_flushes
    assert repl.total_log_bytes >= base.total_log_bytes
    for a, b in zip(base_sys.nodes, repl_sys.nodes):
        assert np.array_equal(a.memory.buffer, b.memory.buffer)


def test_replicated_run_pays_for_its_mirrors():
    """k=2 must actually cost something: mirror traffic on the wire,
    quorum acks, and a run no faster than the unreplicated one."""
    config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
    base, _ = run_application("sor", "ccl", config, "test")
    repl, _ = run_application(
        "sor", "failover", config, "test", verify=False, replication=2,
    )
    assert repl.replication == 2
    assert len(repl.replication_stats) == 4
    assert sum(s["mirrors_sent"] for s in repl.replication_stats) > 0
    assert repl.network_bytes > base.network_bytes
    assert repl.total_time >= base.total_time
