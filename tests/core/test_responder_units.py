"""Direct unit tests for the recovery responders and log queries."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core import (
    FailedNodeResponder,
    SurvivorResponder,
    make_hooks_factory,
)
from repro.dsm import DsmSystem, VectorClock
from repro.dsm.messages import LogDiffRequest, ReconRequest
from repro.errors import RecoveryError
from repro.memory import LocalMemory
from tests.core.conftest import BarrierApp


@pytest.fixture(scope="module")
def phase_a():
    cfg = ClusterConfig.ultra5(num_nodes=4, page_size=256)
    system = DsmSystem(BarrierApp(iters=3), cfg, make_hooks_factory("ccl"))
    system.run()
    for node in system.nodes:  # make trailing volatile records queryable
        node.hooks.log.force_seal()
    return system


def some_home_page(system, node_id):
    node = system.nodes[node_id]
    for p, events in node.home_events.items():
        if events:
            return p, events
    pytest.skip("node homes no updated pages")


class TestSurvivorResponder:
    def test_direct_path_for_frozen_version(self, phase_a):
        node = phase_a.nodes[1]
        page, _events = some_home_page(phase_a, 1)
        resp = SurvivorResponder(node, LocalMemory(phase_a.space))
        frozen = node.pagetable.entry(page).version
        reply = resp.serve_recon(ReconRequest(0, [(page, frozen, None)]))
        item = reply.items[0]
        assert item.direct is not None
        assert item.version == frozen
        assert np.array_equal(item.direct, node.memory.page_bytes(page))

    def test_checkpoint_path_for_old_version(self, phase_a):
        node = phase_a.nodes[1]
        page, events = some_home_page(phase_a, 1)
        resp = SurvivorResponder(node, LocalMemory(phase_a.space))
        zero = VectorClock.zero(4)
        reply = resp.serve_recon(ReconRequest(0, [(page, zero, None)]))
        item = reply.items[0]
        assert item.direct is None and item.checkpoint is not None
        assert item.history == []  # nothing is dominated by zero

    def test_delta_path_ships_no_page_image(self, phase_a):
        node = phase_a.nodes[1]
        page, events = some_home_page(phase_a, 1)
        if len(events) < 2:
            pytest.skip("need at least two update events")
        resp = SurvivorResponder(node, LocalMemory(phase_a.space))
        # an intermediate version: newer than `have`, older than frozen
        needed = events[-2][3]
        have = events[0][3]
        reply = resp.serve_recon(ReconRequest(0, [(page, needed, have)]))
        item = reply.items[0]
        assert item.delta is True
        assert item.checkpoint is None and item.direct is None
        expected = {
            (w, i, p)
            for (w, i, p, vt) in events
            if needed.dominates(vt) and not have.dominates(vt)
        }
        assert set(item.history) == expected
        assert expected  # the window is non-trivial

    def test_non_home_page_rejected(self, phase_a):
        node = phase_a.nodes[1]
        foreign = next(
            p for p in range(phase_a.space.npages) if phase_a.homes[p] != 1
        )
        resp = SurvivorResponder(node, LocalMemory(phase_a.space))
        with pytest.raises(RecoveryError):
            resp.serve_recon(
                ReconRequest(0, [(foreign, VectorClock.zero(4), None)])
            )

    def test_logdiff_exact_and_range_queries(self, phase_a):
        from repro.core import OwnDiffLogRecord

        node = phase_a.nodes[0]
        log = node.hooks.log
        own = [r for r in log.select(OwnDiffLogRecord) if r.diffs]
        assert own
        target = own[0]
        page = target.diffs[0].page
        resp = SurvivorResponder(node, LocalMemory(phase_a.space))
        reply, nbytes = resp.serve_logdiff(
            LogDiffRequest(1, wants=[(page, target.vt_index, 0)])
        )
        assert len(reply.entries) == 1
        assert nbytes == reply.entries[0][0].nbytes
        # range query over the full history returns at least as much
        reply2, _n = resp.serve_logdiff(
            LogDiffRequest(1, ranges=[(page, 0, 99)])
        )
        assert len(reply2.entries) >= 1


class TestFailedNodeResponder:
    def test_history_rederived_from_log(self, phase_a):
        node = phase_a.nodes[1]
        page, events = some_home_page(phase_a, 1)
        failed = FailedNodeResponder(node, LocalMemory(phase_a.space),
                                     node.hooks.log)
        frozen = node.pagetable.entry(page).version
        reply = failed.serve_recon(ReconRequest(0, [(page, frozen, None)]))
        item = reply.items[0]
        # no frozen-copy fast path: memory is "lost"
        assert item.direct is None and item.checkpoint is not None
        # log-derived history covers the in-memory event history
        logged = set(item.history)
        in_memory = {(w, i, part) for (w, i, part, _vt) in events}
        assert in_memory <= logged

    def test_delta_history_is_unfiltered(self, phase_a):
        node = phase_a.nodes[1]
        page, _events = some_home_page(phase_a, 1)
        failed = FailedNodeResponder(node, LocalMemory(phase_a.space),
                                     node.hooks.log)
        frozen = node.pagetable.entry(page).version
        have = VectorClock.zero(4)
        full = failed.serve_recon(ReconRequest(0, [(page, frozen, None)]))
        delta = failed.serve_recon(ReconRequest(0, [(page, frozen, have)]))
        assert delta.items[0].delta is True
        assert set(delta.items[0].history) == set(full.items[0].history)
