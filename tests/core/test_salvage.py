"""Salvage-scan, recovery-planning, and storage-fault recovery tests.

The contract under test: recovery over an imperfect disk is bit-exact
or it refuses with a diagnosed error -- never silently wrong.  Torn
tails recover every whole frame in the surviving byte prefix; bit rot
quarantines the damaged record and everything after it; checkpoint
retention plus truncation still replays bit-exactly, falling back to
an earlier retained checkpoint when the salvaged log cannot cover the
replay window.
"""

import pytest

from repro.config import ClusterConfig, DiskConfig
from repro.core import NoticeLogRecord, StableLog, make_hooks_factory
from repro.core.checkpoint import Checkpointer
from repro.core.logformat import SEGMENT_HEADER_BYTES, decode_segment
from repro.core.recovery import (
    run_multi_recovery_experiment,
    run_recovery_experiment,
)
from repro.core.salvage import SalvageReport, plan_recovery, salvage_log
from repro.dsm import DsmSystem, IntervalRecord, VectorClock
from repro.errors import RecoveryError
from repro.sim import Disk, DiskFaultPlan, DiskFaults, Simulator


def notice(interval):
    rec = IntervalRecord(0, 0, VectorClock((1, 0)), (0, 1))
    return NoticeLogRecord(interval, 0, [rec])


def build_log(plan=None, intervals=5, per=2):
    """A log with one flushed two-record segment per interval."""
    sim = Simulator()
    disk = Disk(sim, DiskConfig())
    log = StableLog(disk, node_id=0, faults=plan)
    for i in range(intervals):
        for _ in range(per):
            log.append(notice(i))
        log.flush_async()
    sim.run()
    return log, sim


class TestSalvageClean:
    def test_pristine_log_salvages_whole(self):
        log, sim = build_log()
        out, report = salvage_log(log.durable_view(sim.now))
        assert report.clean
        assert report.salvaged_count == 10
        assert report.records_quarantined == 0
        assert report.segments_scanned == 5
        assert report.scan_bytes == sum(s.nbytes for s in log._segments)
        assert out.persistent_records == log._persistent

    def test_gc_segments_are_not_scanned(self):
        log, sim = build_log()
        log.truncate_below(2)
        out, report = salvage_log(log.durable_view(sim.now))
        assert report.segments_scanned == 3
        assert out.truncated_below == 2


class TestSalvageTorn:
    def torn_view(self, surviving_records):
        """A crash mid-flush of the last segment, tear cut so that
        exactly ``surviving_records`` whole frames fit the prefix."""
        log, sim = build_log(intervals=3)
        last = log._segments[-1]
        cut = SEGMENT_HEADER_BYTES + sum(
            r.nbytes for r in last.records[:surviving_records]
        )
        if surviving_records < last.count:
            cut += last.records[surviving_records].nbytes // 2
            cut = min(cut, last.nbytes - 1)
        view = log.durable_view(sim.now)
        view._retire_to = None  # no-op attr; keeps the view unshared
        view._segments = view._segments[:-1]
        view._persistent = view._persistent[: last.start]
        view._torn = (last, cut)
        return log, view, last

    @pytest.mark.parametrize("keep", [0, 1, 2])
    def test_tail_recovers_exactly_the_whole_frames(self, keep):
        log, view, last = self.torn_view(keep)
        out, report = salvage_log(view)
        assert report.salvaged_count == last.start + keep
        assert report.torn_records_recovered == keep
        assert (report.torn_segment == last.seq) == (keep > 0)
        # the salvaged set is always a prefix of the append sequence
        assert out.persistent_records == log._persistent[: last.start + keep]
        assert report.clean

    def test_salvaged_log_is_fully_durable(self):
        """Salvage output is a stable prefix: everything it kept counts
        as durable from its single (re-stamped) flush mark onward."""
        _log, view, last = self.torn_view(2)
        out, _report = salvage_log(view)
        mark_time = out._flush_marks[-1][1]
        assert out.durable_count(mark_time) == len(out.persistent_records)


class TestSalvageBitrot:
    # seed 1 at bitrot=0.4 flips a frame in segment 3 of this log shape
    # (pure draws: the pin is deterministic)
    SEED, RATE = 1, 0.4

    def test_quarantine_cuts_at_the_first_corrupt_segment(self):
        plan = DiskFaultPlan.uniform(self.SEED, bitrot=self.RATE)
        log, sim = build_log(plan)
        out, report = salvage_log(log.durable_view(sim.now))
        assert not report.clean
        assert report.corrupt_segment == 3
        assert report.corrupt_interval == 3
        assert report.salvaged_count == 6
        assert report.records_quarantined == 4
        assert out.persistent_records == log._persistent[:6]
        assert "corrupt segment 3" in report.describe()

    def test_quarantine_is_repeatable(self):
        plan = DiskFaultPlan.uniform(self.SEED, bitrot=self.RATE)
        log, sim = build_log(plan)
        first = salvage_log(log.durable_view(sim.now))[1]
        second = salvage_log(log.durable_view(sim.now))[1]
        assert (first.salvaged_count, first.corrupt_segment) == (
            second.salvaged_count, second.corrupt_segment
        )


class TestPlanRecovery:
    def test_clean_log_replays_every_sealed_interval(self):
        log, sim = build_log()
        report = SalvageReport(0, salvaged_count=10)
        assert plan_recovery(log, report, seals_done=5) == (5, 0, None)

    def test_quarantine_lowers_the_stop_seal(self):
        log, _sim = build_log()
        # salvage kept 6 records: interval 3 is the first incomplete one
        report = SalvageReport(0, salvaged_count=6, records_quarantined=4,
                               corrupt_segment=3, corrupt_interval=3)
        stop_at, free_until, snap = plan_recovery(log, report, seals_done=5)
        assert (stop_at, free_until, snap) == (3, 0, None)

    def test_nothing_durable_restarts_from_initial_state(self):
        log, _sim = build_log(intervals=1)
        report = SalvageReport(0, salvaged_count=0, records_quarantined=2)
        assert plan_recovery(log, report, seals_done=1) == (0, 0, None)

    def test_truncated_log_without_checkpoint_is_diagnosed(self):
        log, _sim = build_log()
        log.truncate_below(2)
        report = SalvageReport(0, salvaged_count=10)
        with pytest.raises(RecoveryError, match="no retained checkpoint"):
            plan_recovery(log, report, seals_done=5)

    def test_retained_checkpoint_anchors_a_truncated_log(self):
        log, _sim = build_log()
        log.truncate_below(2)

        class StubCheckpointer:
            def __init__(self, seals):
                self.snaps = {
                    s: type("Snap", (), {"seal": s})() for s in seals
                }

            def latest_before(self, seal):
                ok = [s for s in self.snaps if s <= seal]
                return self.snaps[max(ok)] if ok else None

        stop_at, free_until, snap = plan_recovery(
            log, SalvageReport(0, salvaged_count=10), 5, StubCheckpointer([2, 4])
        )
        assert (stop_at, free_until) == (5, 4)
        assert snap.seal == 4

    def test_checkpoint_below_the_watermark_is_rejected(self):
        log, _sim = build_log()
        log.truncate_below(3)

        class StubCheckpointer:
            def latest_before(self, seal):
                return type("Snap", (), {"seal": 1})()

        with pytest.raises(RecoveryError, match="no retained checkpoint"):
            plan_recovery(
                log, SalvageReport(0, salvaged_count=10), 5, StubCheckpointer()
            )


class TestRecoveryWithRetention:
    def test_restore_mode_replay_is_bit_exact(self):
        """Retention truncates the victim's log; replay must install the
        checkpoint image and still land bit-exact at the crash seal."""
        from repro.apps import make_app

        result = run_recovery_experiment(
            make_app("sor", n=24, iters=6),
            ClusterConfig.ultra5(num_nodes=4), "ml",
            failed_node=1, checkpoint_every=2, retention=3,
        )
        assert result.ok, result.mismatches[:3]
        # retention must actually have retired checkpoints and truncated
        a = result.phase_a
        assert a.reclaimed_log_bytes > 0
        assert a.live_log_bytes < a.total_log_bytes

    def test_truncation_bounds_live_log_bytes(self):
        from repro.apps import make_app

        results = {}
        for retention in (None, 2):
            results[retention] = run_recovery_experiment(
                make_app("shallow", n=16, steps=8),
                ClusterConfig.ultra5(num_nodes=4), "ml",
                failed_node=1, checkpoint_every=4, retention=retention,
            )
        assert all(r.ok for r in results.values())
        assert (
            results[2].phase_a.live_log_bytes
            < results[None].phase_a.live_log_bytes / 2
        )


class TestMultiRecoveryDiskFaults:
    CONFIG = ClusterConfig.ultra5(num_nodes=4, page_size=256)

    def app(self):
        from tests.core.conftest import BarrierApp

        return BarrierApp(iters=4)

    def phase_a_total_time(self, plan):
        pilot = DsmSystem(
            self.app(), self.CONFIG, make_hooks_factory("ml"),
            disk_fault_plan=plan,
        )
        for node in pilot.nodes:
            node.checkpointer = Checkpointer(2)
        return pilot.run().total_time

    def test_one_victim_falls_back_while_the_other_replays(self):
        """Per-node bit rot on victim 1 only: its quarantined log stops
        replay early and anchors at an *earlier* retained checkpoint
        than victim 2's clean replay -- and both stay bit-exact."""
        def plan():
            # seed 2 (pure draws) corrupts victim 1's mid-log segment
            return DiskFaultPlan(
                2, nodes={1: DiskFaults(torn_tail=1.0, bitrot=0.15)}
            )

        t = 0.9 * self.phase_a_total_time(plan())
        res = run_multi_recovery_experiment(
            self.app(), self.CONFIG, "ml", failed_nodes=(1, 2),
            at_time=t, checkpoint_every=2, disk_fault_plan=plan(),
        )
        assert res.ok, res.mismatches
        assert res.salvage[1].records_quarantined > 0
        assert res.salvage[2].clean
        assert res.at_seals[1] < res.at_seals[2]
        assert res.free_untils[1] < res.free_untils[2]

    def test_torn_victim_recovers_tail_records(self):
        """Crash inside a flush window: the torn tail's whole frames are
        salvaged and replay covers the extra interval they complete."""
        def plan():
            return DiskFaultPlan.uniform(21, torn_tail=1.0)

        pilot = DsmSystem(
            self.app(), self.CONFIG, make_hooks_factory("ml"),
            disk_fault_plan=plan(),
        )
        for node in pilot.nodes:
            node.checkpointer = Checkpointer(2)
        pilot.run()
        # pick a crash instant inside a real flush window of node 1
        # whose pure torn draw leaves at least one whole frame
        probe = plan()
        log1 = pilot.nodes[1].hooks.log
        pick = None
        for seg in log1._segments:
            if seg.sealed or seg.durable_time is None:
                continue
            if seg.durable_time <= seg.issue_time or seg.interval_lo < 3:
                continue
            surviving = probe.torn_bytes(1, seg.seq, seg.nbytes)
            if surviving is None:
                continue
            recs, _, _ = decode_segment(seg.encoded()[:surviving])
            if recs:
                pick = seg
                break
        assert pick is not None, "no torn candidate window in this run"
        t = (pick.issue_time + pick.durable_time) / 2
        res = run_multi_recovery_experiment(
            self.app(), self.CONFIG, "ml", failed_nodes=(1, 2),
            at_time=t, checkpoint_every=2, disk_fault_plan=plan(),
        )
        assert res.ok, res.mismatches
        assert res.salvage[1].torn_segment == pick.seq
        assert res.salvage[1].torn_records_recovered > 0

    def test_inert_disk_plan_matches_no_plan(self):
        res_bare = run_multi_recovery_experiment(
            self.app(), self.CONFIG, "ml", failed_nodes=(1, 2),
            checkpoint_every=2,
        )
        res_inert = run_multi_recovery_experiment(
            self.app(), self.CONFIG, "ml", failed_nodes=(1, 2),
            checkpoint_every=2, disk_fault_plan=DiskFaultPlan.none(),
        )
        assert res_bare.ok and res_inert.ok
        assert res_bare.recovery_time == res_inert.recovery_time
        assert res_bare.at_seals == res_inert.at_seals
