"""Unit tests for the stable-storage log."""

import numpy as np
import pytest

from repro.config import DiskConfig
from repro.core import (
    FetchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    StableLog,
)
from repro.dsm import IntervalRecord, VectorClock
from repro.errors import LoggingProtocolError
from repro.memory import Diff
from repro.sim import Disk, Simulator


def make_log(sim=None, latency=0.01, bw=1e6):
    sim = sim or Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=latency, write_latency_s=latency,
                   bandwidth_bps=bw),
    )
    return StableLog(disk), sim


def notice(interval, window=0, npages=2):
    rec = IntervalRecord(0, 0, VectorClock((1, 0)), tuple(range(npages)))
    return NoticeLogRecord(interval, window, [rec])


def own_diff(interval, vt_index, page, home=False):
    d = Diff(page, [(0, np.array([7], dtype=np.uint32))])
    if home:
        return OwnDiffLogRecord(interval, 0, vt_index=vt_index,
                                vt=VectorClock((1, 0)), home_diffs=[d])
    return OwnDiffLogRecord(interval, 0, vt_index=vt_index,
                            vt=VectorClock((1, 0)), diffs=[d])


class TestBuffering:
    def test_append_accumulates_volatile_bytes(self):
        log, _sim = make_log()
        r = notice(0)
        log.append(r)
        assert log.volatile_bytes == r.nbytes
        log.append(notice(0))
        assert log.volatile_bytes == 2 * r.nbytes

    def test_volatile_peak_tracked(self):
        log, _sim = make_log()
        log.append(notice(0))
        peak = log.volatile_peak_bytes
        log.force_seal()
        assert log.volatile_bytes == 0
        assert log.volatile_peak_bytes == peak


class TestFlushing:
    def test_sync_flush_blocks_and_counts(self):
        log, sim = make_log(latency=0.5, bw=1e9)
        log.append(notice(0))
        spent = {}

        def body():
            spent["t"] = yield from log.flush_sync()

        sim.spawn(body(), name="p")
        sim.run()
        assert spent["t"] == pytest.approx(0.5, rel=1e-3)
        assert log.num_flushes == 1
        assert log.bytes_flushed > 0
        assert log.volatile_bytes == 0

    def test_empty_sync_flush_is_free_and_uncounted(self):
        log, sim = make_log()

        def body():
            t = yield from log.flush_sync()
            assert t == 0.0

        sim.spawn(body(), name="p")
        sim.run()
        assert log.num_flushes == 0
        assert log.disk.num_writes == 0

    def test_async_flush_returns_signal(self):
        log, sim = make_log(latency=0.25, bw=1e9)
        log.append(notice(0))
        sig = log.flush_async()
        assert sig is not None and not sig.triggered
        sim.run()
        assert sig.triggered
        assert log.num_flushes == 1

    def test_async_flush_empty_returns_none(self):
        log, _sim = make_log()
        assert log.flush_async() is None

    def test_force_seal_moves_without_disk(self):
        log, _sim = make_log()
        log.append(notice(3))
        assert log.force_seal() == 1
        assert log.num_flushes == 0
        assert log.disk.num_writes == 0
        assert len(log.bundle(3)) == 1

    def test_mean_accounting_through_summary(self):
        log, sim = make_log()
        log.append(notice(0))
        log.flush_async()
        log.append(notice(1))
        log.append(notice(1))
        log.flush_async()
        sim.run()
        s = log.summary()
        assert s["flushes"] == 2
        assert s["records"] == 3
        assert s["bytes_flushed"] == log.bytes_flushed


class TestQueries:
    def test_bundle_filters_by_interval(self):
        log, _sim = make_log()
        log.append(notice(0))
        log.append(notice(1))
        log.append(notice(1, window=2))
        log.force_seal()
        assert len(log.bundle(0)) == 1
        assert len(log.bundle(1)) == 2
        assert log.bundle_bytes(1) == sum(r.nbytes for r in log.bundle(1))

    def test_select_by_type_and_window(self):
        log, _sim = make_log()
        log.append(notice(0, window=1))
        log.append(FetchLogRecord(0, 1, page=5, version=VectorClock((1, 0))))
        log.force_seal()
        assert len(log.select(NoticeLogRecord, interval=0)) == 1
        assert len(log.select(FetchLogRecord, interval=0, window=1)) == 1
        assert log.select(FetchLogRecord, interval=0, window=2) == []

    def test_find_own_diff_by_page_and_interval(self):
        log, _sim = make_log()
        log.append(own_diff(0, vt_index=0, page=3))
        log.append(own_diff(1, vt_index=1, page=3))
        log.append(own_diff(2, vt_index=2, page=9, home=True))
        log.force_seal()
        d, vt = log.find_own_diff(3, 1)
        assert d.page == 3
        d, vt = log.find_own_diff(9, 2)  # home-write diffs are findable too
        assert d.page == 9

    def test_find_own_diff_missing_raises(self):
        log, _sim = make_log()
        log.force_seal()
        with pytest.raises(LoggingProtocolError):
            log.find_own_diff(0, 0)
