"""Unit tests for the stable-storage log."""

import numpy as np
import pytest

from repro.config import DiskConfig
from repro.core import (
    FetchLogRecord,
    NoticeLogRecord,
    OwnDiffLogRecord,
    StableLog,
)
from repro.core.logformat import SEGMENT_HEADER_BYTES
from repro.dsm import IntervalRecord, VectorClock
from repro.errors import LoggingProtocolError, SimulationError, StorageFaultError
from repro.memory import Diff
from repro.sim import Disk, DiskFaultPlan, Simulator


def make_log(sim=None, latency=0.01, bw=1e6):
    sim = sim or Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=latency, write_latency_s=latency,
                   bandwidth_bps=bw),
    )
    return StableLog(disk), sim


def notice(interval, window=0, npages=2):
    rec = IntervalRecord(0, 0, VectorClock((1, 0)), tuple(range(npages)))
    return NoticeLogRecord(interval, window, [rec])


def own_diff(interval, vt_index, page, home=False):
    d = Diff(page, [(0, np.array([7], dtype=np.uint32))])
    if home:
        return OwnDiffLogRecord(interval, 0, vt_index=vt_index,
                                vt=VectorClock((1, 0)), home_diffs=[d])
    return OwnDiffLogRecord(interval, 0, vt_index=vt_index,
                            vt=VectorClock((1, 0)), diffs=[d])


class TestBuffering:
    def test_append_accumulates_volatile_bytes(self):
        log, _sim = make_log()
        r = notice(0)
        log.append(r)
        assert log.volatile_bytes == r.nbytes
        log.append(notice(0))
        assert log.volatile_bytes == 2 * r.nbytes

    def test_volatile_peak_tracked(self):
        log, _sim = make_log()
        log.append(notice(0))
        peak = log.volatile_peak_bytes
        log.force_seal()
        assert log.volatile_bytes == 0
        assert log.volatile_peak_bytes == peak


class TestFlushing:
    def test_sync_flush_blocks_and_counts(self):
        log, sim = make_log(latency=0.5, bw=1e9)
        log.append(notice(0))
        spent = {}

        def body():
            spent["t"] = yield from log.flush_sync()

        sim.spawn(body(), name="p")
        sim.run()
        assert spent["t"] == pytest.approx(0.5, rel=1e-3)
        assert log.num_flushes == 1
        assert log.bytes_flushed > 0
        assert log.volatile_bytes == 0

    def test_empty_sync_flush_is_free_and_uncounted(self):
        log, sim = make_log()

        def body():
            t = yield from log.flush_sync()
            assert t == 0.0

        sim.spawn(body(), name="p")
        sim.run()
        assert log.num_flushes == 0
        assert log.disk.num_writes == 0

    def test_async_flush_returns_signal(self):
        log, sim = make_log(latency=0.25, bw=1e9)
        log.append(notice(0))
        sig = log.flush_async()
        assert sig is not None and not sig.triggered
        sim.run()
        assert sig.triggered
        assert log.num_flushes == 1

    def test_async_flush_empty_returns_none(self):
        log, _sim = make_log()
        assert log.flush_async() is None

    def test_force_seal_moves_without_disk(self):
        log, _sim = make_log()
        log.append(notice(3))
        assert log.force_seal() == 1
        assert log.num_flushes == 0
        assert log.disk.num_writes == 0
        assert len(log.bundle(3)) == 1

    def test_mean_accounting_through_summary(self):
        log, sim = make_log()
        log.append(notice(0))
        log.flush_async()
        log.append(notice(1))
        log.append(notice(1))
        log.flush_async()
        sim.run()
        s = log.summary()
        assert s["flushes"] == 2
        assert s["records"] == 3
        assert s["bytes_flushed"] == log.bytes_flushed


class TestQueries:
    def test_bundle_filters_by_interval(self):
        log, _sim = make_log()
        log.append(notice(0))
        log.append(notice(1))
        log.append(notice(1, window=2))
        log.force_seal()
        assert len(log.bundle(0)) == 1
        assert len(log.bundle(1)) == 2
        assert log.bundle_bytes(1) == sum(r.nbytes for r in log.bundle(1))

    def test_select_by_type_and_window(self):
        log, _sim = make_log()
        log.append(notice(0, window=1))
        log.append(FetchLogRecord(0, 1, page=5, version=VectorClock((1, 0))))
        log.force_seal()
        assert len(log.select(NoticeLogRecord, interval=0)) == 1
        assert len(log.select(FetchLogRecord, interval=0, window=1)) == 1
        assert log.select(FetchLogRecord, interval=0, window=2) == []

    def test_find_own_diff_by_page_and_interval(self):
        log, _sim = make_log()
        log.append(own_diff(0, vt_index=0, page=3))
        log.append(own_diff(1, vt_index=1, page=3))
        log.append(own_diff(2, vt_index=2, page=9, home=True))
        log.force_seal()
        d, vt = log.find_own_diff(3, 1)
        assert d.page == 3
        d, vt = log.find_own_diff(9, 2)  # home-write diffs are findable too
        assert d.page == 9

    def test_find_own_diff_missing_raises(self):
        log, _sim = make_log()
        log.force_seal()
        with pytest.raises(LoggingProtocolError):
            log.find_own_diff(0, 0)


class TestSegments:
    def test_each_flush_writes_one_segment(self):
        log, sim = make_log()
        log.append(notice(0))
        log.append(notice(0))
        log.flush_async()
        log.append(notice(1))
        log.flush_async()
        sim.run()
        assert len(log._segments) == 2
        a, b = log._segments
        assert (a.start, a.count) == (0, 2)
        assert (b.start, b.count) == (2, 1)
        assert a.durable_time is not None and not a.sealed

    def test_segment_bytes_match_the_encoding(self):
        log, sim = make_log()
        log.append(notice(0))
        log.append(FetchLogRecord(0, 0, page=5, version=VectorClock((1, 0))))
        log.flush_async()
        sim.run()
        seg = log._segments[0]
        assert seg.nbytes == len(seg.encoded())
        assert seg.nbytes == SEGMENT_HEADER_BYTES + sum(
            r.nbytes for r in seg.records
        )

    def test_golden_framed_byte_accounting(self):
        """Pin the exact on-disk sizes of the framed format.

        These literals change only when the frame/segment layout
        changes -- which must be a deliberate format revision, because
        every Table-2 number and recovery read charge is derived from
        them.
        """
        n = notice(0)
        f = FetchLogRecord(1, 0, page=5, version=VectorClock((1, 0)))
        assert n.nbytes == 52
        assert f.nbytes == 32
        log, sim = make_log()
        log.append(notice(0))
        log.append(notice(0))
        log.flush_async()
        log.append(notice(1))
        log.append(FetchLogRecord(1, 0, page=5, version=VectorClock((1, 0))))
        log.flush_async()
        sim.run()
        assert [s.nbytes for s in log._segments] == [120, 100]
        assert log.bytes_flushed == 220
        assert log.disk.bytes_written == 220


class TestTruncation:
    def fill(self, intervals=4):
        log, sim = make_log()
        for i in range(intervals):
            log.append(notice(i))
            log.append(notice(i))
            log.flush_async()
        sim.run()
        return log, sim

    def test_truncate_reclaims_segments_below_the_seal(self):
        log, _sim = self.fill()
        total = log.live_log_bytes
        freed = log.truncate_below(2)
        assert freed > 0
        assert log.reclaimed_bytes == freed
        assert log.live_log_bytes == total - freed
        assert [s.gc for s in log._segments] == [True, True, False, False]
        # the flat persistent sequence survives (durability marks are
        # count-based); only the queryable index is cut
        assert len(log.persistent_records) == 8

    def test_queries_below_the_watermark_raise(self):
        log, _sim = self.fill()
        log.truncate_below(2)
        with pytest.raises(LoggingProtocolError, match="truncated"):
            log.bundle(1)
        with pytest.raises(LoggingProtocolError, match="truncated"):
            log.select(NoticeLogRecord, interval=0)
        assert len(log.bundle(2)) == 2

    def test_truncate_is_monotone_and_idempotent(self):
        log, _sim = self.fill()
        freed = log.truncate_below(2)
        assert log.truncate_below(2) == 0
        assert log.truncate_below(1) == 0
        assert log.reclaimed_bytes == freed
        assert log.truncated_below == 2

    def test_summary_reports_live_and_reclaimed(self):
        log, _sim = self.fill()
        log.truncate_below(3)
        s = log.summary()
        assert s["live_log_bytes"] == log.live_log_bytes
        assert s["reclaimed_bytes"] == log.reclaimed_bytes
        assert s["reclaimed_bytes"] > 0


class TestWriteErrors:
    def faulted_log(self, write_error, sim=None):
        sim = sim or Simulator()
        disk = Disk(sim, DiskConfig())
        plan = DiskFaultPlan.uniform(7, write_error=write_error)
        return StableLog(disk, node_id=0, faults=plan), sim

    def test_transient_errors_retry_and_succeed(self):
        log, sim = self.faulted_log(write_error=0.5)
        for i in range(8):
            log.append(notice(i))
            log.flush_async()
        sim.run()
        assert log.flush_retries > 0
        # every flush eventually landed: all records are durable
        assert log.durable_count(sim.now) == 8
        # each retry pays a full disk write on top of the first attempt
        assert log.disk.num_writes == log.num_flushes + log.flush_retries

    def test_retries_cost_time(self):
        clean, clean_sim = make_log()
        clean.append(notice(0))
        clean.flush_async()
        clean_sim.run()
        log, sim = self.faulted_log(write_error=0.5)
        for i in range(8):
            log.append(notice(i))
            log.flush_async()
        sim.run()
        assert sim.now > clean_sim.now

    def test_exhausted_retries_raise_storage_fault(self):
        log, sim = self.faulted_log(write_error=1.0)
        log.append(notice(0))
        log.flush_async()
        with pytest.raises(SimulationError) as info:
            sim.run()
        assert isinstance(info.value.__cause__, StorageFaultError)
        assert "failed" in str(info.value.__cause__)

    def test_inert_plan_is_byte_identical(self):
        runs = []
        for plan in (None, DiskFaultPlan.none()):
            sim = Simulator()
            disk = Disk(sim, DiskConfig())
            log = StableLog(disk, node_id=0, faults=plan)
            for i in range(3):
                log.append(notice(i))
                log.flush_async()
            sim.run()
            runs.append((sim.now, log.summary(), log.disk.num_writes))
        assert runs[0] == runs[1]


class TestDurableViewTorn:
    def test_in_flight_flush_exposes_a_torn_tail(self):
        sim = Simulator()
        disk = Disk(sim, DiskConfig())
        plan = DiskFaultPlan.uniform(3, torn_tail=1.0)
        log = StableLog(disk, node_id=0, faults=plan)
        log.append(notice(0))
        log.flush_async()
        sim.run()
        log.append(notice(1))
        log.flush_async()  # in flight: sim not stepped again
        t = sim.now + 1e-9
        view = log.durable_view(t)
        assert len(view.persistent_records) == 1
        assert view._torn is not None
        seg, surviving = view._torn
        assert seg.start == 1
        assert 0 <= surviving < seg.nbytes
        # pure draw: re-probing the same instant sees the same tear
        again = log.durable_view(t)
        assert again._torn[1] == surviving

    def test_no_faults_means_no_torn_tail(self):
        log, sim = make_log()
        log.append(notice(0))
        log.flush_async()
        sim.run()
        log.append(notice(1))
        log.flush_async()
        view = log.durable_view(sim.now + 1e-9)
        assert view._torn is None
        assert len(view.persistent_records) == 1
