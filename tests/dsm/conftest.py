"""Shared helpers for DSM integration tests."""

from typing import Callable, Optional

import pytest

from repro.config import ClusterConfig
from repro.dsm import DsmSystem


class MiniApp:
    """Ad-hoc application assembled from allocate/program callables."""

    def __init__(self, alloc, program, homes=None, name="mini"):
        self.name = name
        self._alloc = alloc
        self._program = program
        self._homes = homes

    def allocate(self, space, nprocs):
        self._alloc(space, nprocs)

    def homes(self, space, nprocs):
        if self._homes is None:
            return None
        return self._homes(space, nprocs)

    def program(self, dsm):
        yield from self._program(dsm)


def small_config(nprocs=4, **overrides) -> ClusterConfig:
    """A cluster with small pages so tests exercise many page states."""
    overrides.setdefault("page_size", 256)
    return ClusterConfig.ultra5(num_nodes=nprocs, **overrides)


def run_app(
    alloc: Callable,
    program: Callable,
    nprocs: int = 4,
    homes: Optional[Callable] = None,
    config: Optional[ClusterConfig] = None,
    hooks_factory=None,
):
    """Build a system for a MiniApp, run it, return (result, system)."""
    app = MiniApp(alloc, program, homes)
    system = DsmSystem(app, config or small_config(nprocs), hooks_factory)
    return system.run(), system


@pytest.fixture
def mini_runner():
    return run_app
