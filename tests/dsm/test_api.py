"""Unit tests for the application-facing DSM handle."""

import numpy as np
import pytest

from repro.errors import ApplicationError, MemoryLayoutError
from tests.dsm.conftest import run_app


def alloc(space, nprocs):
    space.allocate("a", (128,), np.float64, init=np.zeros(128))
    space.allocate("b", (4, 4), np.int32, init=np.zeros((4, 4), np.int32))


class TestDsmFacade:
    def test_rank_and_size_exposed(self):
        seen = {}

        def program(dsm):
            seen[dsm.rank] = dsm.nprocs
            yield from dsm.barrier()

        run_app(alloc, program, nprocs=3)
        assert seen == {0: 3, 1: 3, 2: 3}

    def test_arr_returns_shaped_views(self):
        def program(dsm):
            assert dsm.arr("a").shape == (128,)
            assert dsm.arr("b").shape == (4, 4)
            assert dsm.arr("b").dtype == np.int32
            yield from dsm.barrier()

        run_app(alloc, program, nprocs=2)

    def test_unknown_variable_raises(self):
        def program(dsm):
            with pytest.raises(ApplicationError):
                dsm.arr("zzz")
            yield from dsm.barrier()

        run_app(alloc, program, nprocs=2)

    def test_read_defaults_to_whole_variable(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("a")
                dsm.arr("a")[:] = 1.5
            yield from dsm.barrier()
            yield from dsm.read("a")  # no bounds: everything
            assert dsm.arr("a")[127] == 1.5

        run_app(alloc, program, nprocs=2,
                homes=lambda s, n: [0] * s.npages)

    def test_out_of_range_access_rejected(self):
        def program(dsm):
            with pytest.raises(MemoryLayoutError):
                yield from dsm.read("a", 0, 999)
            yield from dsm.barrier()

        run_app(alloc, program, nprocs=2)

    def test_pages_of_maps_elements_to_pages(self):
        captured = {}

        def program(dsm):
            captured["pages"] = list(dsm.pages_of("a", 0, 32))
            yield from dsm.barrier()

        run_app(alloc, program, nprocs=2)
        # 32 float64 = 256 B = exactly the first (256-byte) test page
        assert captured["pages"] == [0]

    def test_page_level_annotations(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write_pages([0])
                dsm.arr("a")[0] = 9.0
            yield from dsm.barrier()
            yield from dsm.read_pages([0])
            assert dsm.arr("a")[0] == 9.0

        run_app(alloc, program, nprocs=2,
                homes=lambda s, n: [0] * s.npages)

    def test_compute_charges_time(self):
        def program(dsm):
            yield from dsm.compute(3e6)
            yield from dsm.barrier()

        result, _sys = run_app(alloc, program, nprocs=2)
        per_node = 3e6 / result.config.cpu.flop_rate
        assert result.aggregate.time.get("compute") == pytest.approx(2 * per_node)
