"""Property-based coherence testing.

Generates random data-race-free SPMD programs (barrier phases with a
random disjoint write partition per round, plus lock-protected
read-modify-writes) and checks that every rank observes exactly the
memory a sequentially consistent execution would produce.  This is the
end-to-end correctness net under the HLRC protocol.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.dsm.conftest import run_app

ELEMS = 256  # spans 4 pages of 256 bytes with int32
NPROCS = 4
CHUNKS = 16
CHUNK = ELEMS // CHUNKS


@st.composite
def barrier_programs(draw):
    """A list of rounds; each round maps chunk -> writing rank (or None)."""
    rounds = draw(st.integers(1, 4))
    plan = []
    for _ in range(rounds):
        owners = draw(
            st.lists(
                st.one_of(st.none(), st.integers(0, NPROCS - 1)),
                min_size=CHUNKS,
                max_size=CHUNKS,
            )
        )
        plan.append(owners)
    return plan


def reference_final(plan):
    ref = np.zeros(ELEMS, dtype=np.int32)
    for rnd, owners in enumerate(plan):
        for chunk, owner in enumerate(owners):
            if owner is not None:
                ref[chunk * CHUNK : (chunk + 1) * CHUNK] = (rnd + 1) * 100 + owner
    return ref


@settings(max_examples=25, deadline=None)
@given(plan=barrier_programs(), homes_seed=st.integers(0, 3))
def test_random_barrier_phases_match_sequential_reference(plan, homes_seed):
    observed = {}

    def alloc(space, nprocs):
        space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))

    def homes(space, nprocs):
        # vary the home layout so coverage includes home==writer,
        # home==reader, and third-party homes
        return [(p + homes_seed) % nprocs for p in range(space.npages)]

    def program(dsm):
        for rnd, owners in enumerate(plan):
            for chunk, owner in enumerate(owners):
                if owner == dsm.rank:
                    lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo:hi] = (rnd + 1) * 100 + owner
            yield from dsm.barrier()
        yield from dsm.read("x")
        observed[dsm.rank] = dsm.arr("x").copy()

    run_app(alloc, program, nprocs=NPROCS, homes=homes)
    ref = reference_final(plan)
    for rank in range(NPROCS):
        assert np.array_equal(observed[rank], ref), f"rank {rank} diverged"


@settings(max_examples=15, deadline=None)
@given(
    increments=st.lists(
        st.tuples(st.integers(0, NPROCS - 1), st.integers(0, 7)),
        min_size=1,
        max_size=24,
    )
)
def test_random_lock_protected_increments_sum_correctly(increments):
    """Commutative read-modify-writes under locks reach the exact total."""
    counters = 8

    def alloc(space, nprocs):
        space.allocate("c", (counters,), np.int64, init=np.zeros(counters, np.int64))

    def program(dsm):
        mine = [c for (r, c) in increments if r == dsm.rank]
        for c in mine:
            yield from dsm.acquire(c)
            yield from dsm.read("c", c, c + 1)
            yield from dsm.write("c", c, c + 1)
            dsm.arr("c")[c] += 1
            yield from dsm.release(c)
        yield from dsm.barrier()
        yield from dsm.read("c")
        expected = np.bincount(
            [c for (_r, c) in increments], minlength=counters
        )
        assert np.array_equal(dsm.arr("c"), expected)

    run_app(alloc, program, nprocs=NPROCS)


@settings(max_examples=10, deadline=None)
@given(
    plan=barrier_programs(),
)
def test_mixed_reader_sets_see_consistent_data_mid_run(plan):
    """Readers validate after *every* round, not only at the end."""

    def alloc(space, nprocs):
        space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))

    ref = np.zeros(ELEMS, dtype=np.int32)
    checkpoints = []
    for rnd, owners in enumerate(plan):
        for chunk, owner in enumerate(owners):
            if owner is not None:
                ref[chunk * CHUNK : (chunk + 1) * CHUNK] = (rnd + 1) * 100 + owner
        checkpoints.append(ref.copy())

    def program(dsm):
        for rnd, owners in enumerate(plan):
            for chunk, owner in enumerate(owners):
                if owner == dsm.rank:
                    lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo:hi] = (rnd + 1) * 100 + owner
            yield from dsm.barrier()
            # Reading a chunk here while its next-round writer races ahead
            # would be a data race (unordered under release consistency),
            # so only chunks idle in round rnd+1 are race-free to check.
            next_owners = plan[rnd + 1] if rnd + 1 < len(plan) else [None] * CHUNKS
            safe = [c for c in range(CHUNKS) if next_owners[c] is None]
            for c in safe:
                lo, hi = c * CHUNK, (c + 1) * CHUNK
                yield from dsm.read("x", lo, hi)
                assert np.array_equal(
                    dsm.arr("x")[lo:hi], checkpoints[rnd][lo:hi]
                ), f"rank {dsm.rank} inconsistent chunk {c} after round {rnd}"

    run_app(alloc, program, nprocs=NPROCS)
