"""Integration tests for the HLRC coherence protocol.

Each test runs a small SPMD program through the full stack (engine,
network, page tables, diffs, locks/barriers) and checks both the data
outcome and the protocol events that produced it.
"""

import numpy as np
import pytest

from repro.memory import PageState
from tests.dsm.conftest import run_app

N = 4  # default rank count for these tests
ELEMS = 64  # one test page of int32 = 64 elements


def alloc_x(space, nprocs):
    space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))


class TestSingleWriterPropagation:
    def test_reader_sees_writer_data_after_barrier(self):
        seen = {}

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = np.arange(ELEMS)
            yield from dsm.barrier()
            yield from dsm.read("x")
            seen[dsm.rank] = dsm.arr("x").copy()

        run_app(alloc_x, program, nprocs=N)
        for rank in range(N):
            assert np.array_equal(seen[rank], np.arange(ELEMS)), rank

    def test_fault_counts_home_vs_remote(self):
        def homes(space, nprocs):
            return [0] * space.npages  # page homed at rank 0

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 7
            yield from dsm.barrier()
            yield from dsm.read("x")

        result, _sys = run_app(alloc_x, program, nprocs=N, homes=homes)
        stats = result.node_stats
        # home node never faults; every other rank faults exactly once
        assert stats[0].counters.get("page_faults", 0) == 0
        for r in range(1, N):
            assert stats[r].counters.get("page_faults", 0) == 1
        # home write produced no diffs at all
        assert result.aggregate.counters.get("diffs_created", 0) == 0

    def test_remote_writer_sends_diff_to_home(self):
        def homes(space, nprocs):
            return [1] * space.npages  # homed away from the writer

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x", 0, 4)
                dsm.arr("x")[0:4] = 9
            yield from dsm.barrier()
            yield from dsm.read("x")
            assert dsm.arr("x")[0] == 9

        result, _sys = run_app(alloc_x, program, nprocs=2, homes=homes)
        assert result.node_stats[0].counters["diffs_created"] == 1
        assert result.node_stats[1].counters["diffs_applied"] == 1
        # diff carried only the 4 written words, not the page
        assert result.node_stats[0].counters["diff_bytes_sent"] < 100


class TestInvalidation:
    def test_second_write_invalidates_cached_readers(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 1
            yield from dsm.barrier()
            yield from dsm.read("x")
            assert dsm.arr("x")[0] == 1
            yield from dsm.barrier()
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 2
            yield from dsm.barrier()
            yield from dsm.read("x")
            assert dsm.arr("x")[0] == 2

        def homes(space, nprocs):
            return [0] * space.npages

        result, _sys = run_app(alloc_x, program, nprocs=3, homes=homes)
        for r in (1, 2):
            c = result.node_stats[r].counters
            assert c["page_faults"] == 2  # refetch after invalidation
            assert c["invalidations"] >= 1

    def test_writer_does_not_invalidate_its_own_copy(self):
        def homes(space, nprocs):
            return [1] * space.npages

        faults = {}

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 5
            yield from dsm.barrier()
            if dsm.rank == 0:
                # reading own data back must not fault again: the copy
                # stayed valid (only the initial cold write fault counts)
                yield from dsm.read("x")
                assert dsm.arr("x")[0] == 5

        result, _sys = run_app(alloc_x, program, nprocs=2, homes=homes)
        assert result.node_stats[0].counters.get("page_faults", 0) == 1

    def test_version_check_skips_stale_notices(self):
        """A copy fetched after the noticed write is not invalidated."""

        def homes(space, nprocs):
            return [2] * space.npages

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 3
            yield from dsm.barrier()
            if dsm.rank == 1:
                yield from dsm.read("x")  # fetches post-write version
            yield from dsm.barrier()
            if dsm.rank == 1:
                yield from dsm.read("x")  # notice already covered: no fault
                assert dsm.arr("x")[0] == 3

        result, _sys = run_app(alloc_x, program, nprocs=3, homes=homes)
        assert result.node_stats[1].counters["page_faults"] == 1


class TestMultipleWriters:
    def test_disjoint_writers_of_one_page_merge_at_home(self):
        """The multiple-writer protocol: false sharing without ping-pong."""

        def program(dsm):
            n = dsm.nprocs
            chunk = ELEMS // n
            lo, hi = dsm.rank * chunk, (dsm.rank + 1) * chunk
            yield from dsm.write("x", lo, hi)
            dsm.arr("x")[lo:hi] = dsm.rank + 1
            yield from dsm.barrier()
            yield from dsm.read("x")
            for r in range(n):
                assert np.all(dsm.arr("x")[r * chunk : (r + 1) * chunk] == r + 1)

        def homes(space, nprocs):
            return [0] * space.npages

        result, _sys = run_app(alloc_x, program, nprocs=N, homes=homes)
        # three remote writers each produced one diff for the single page
        assert result.node_stats[0].counters.get("diffs_created", 0) == 0
        total = sum(
            result.node_stats[r].counters.get("diffs_created", 0) for r in range(1, N)
        )
        assert total == N - 1

    def test_writer_copy_invalidated_by_concurrent_writer(self):
        """After the barrier a writer must refetch to see peers' words."""

        def program(dsm):
            half = ELEMS // 2
            lo = 0 if dsm.rank == 0 else half
            hi = half if dsm.rank == 0 else ELEMS
            yield from dsm.write("x", lo, hi)
            dsm.arr("x")[lo:hi] = dsm.rank + 10
            yield from dsm.barrier()
            yield from dsm.read("x")
            assert np.all(dsm.arr("x")[:half] == 10)
            assert np.all(dsm.arr("x")[half:] == 11)

        def homes(space, nprocs):
            return [2] * space.npages  # neither writer is home

        result, _sys = run_app(alloc_x, program, nprocs=3, homes=homes)
        # both writers' copies went stale and refetched after the barrier
        assert result.node_stats[0].counters["page_faults"] == 2
        assert result.node_stats[1].counters["page_faults"] == 2


class TestLocks:
    def test_lock_protected_counter_is_race_free(self):
        iters = 5

        def program(dsm):
            for _ in range(iters):
                yield from dsm.acquire(3)
                yield from dsm.read("x", 0, 1)
                yield from dsm.write("x", 0, 1)
                dsm.arr("x")[0] += 1
                yield from dsm.release(3)
            yield from dsm.barrier()
            yield from dsm.read("x", 0, 1)
            assert dsm.arr("x")[0] == dsm.nprocs * iters

        run_app(alloc_x, program, nprocs=N)

    def test_manager_self_acquire_and_contention(self):
        """Lock 0 is managed by node 0; node 0 also competes for it."""

        def program(dsm):
            for _ in range(3):
                yield from dsm.acquire(0)
                yield from dsm.read("x", 0, 1)
                yield from dsm.write("x", 0, 1)
                dsm.arr("x")[0] += 1
                yield from dsm.release(0)
            yield from dsm.barrier()
            yield from dsm.read("x", 0, 1)
            assert dsm.arr("x")[0] == 3 * dsm.nprocs

        run_app(alloc_x, program, nprocs=3)

    def test_notices_propagate_through_lock_chain_without_barrier(self):
        """Rank 1 must see rank 0's write via lock hand-off alone."""

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.acquire(1)
                yield from dsm.write("x", 0, 8)
                dsm.arr("x")[0:8] = 42
                yield from dsm.release(1)
                yield from dsm.barrier()
            else:
                yield from dsm.barrier()
                yield from dsm.acquire(1)
                yield from dsm.read("x", 0, 8)
                assert np.all(dsm.arr("x")[0:8] == 42)
                yield from dsm.release(1)

        run_app(alloc_x, program, nprocs=2)


class TestProtocolBookkeeping:
    def test_run_is_deterministic(self):
        def program(dsm):
            for it in range(3):
                lo = dsm.rank * (ELEMS // dsm.nprocs)
                hi = lo + ELEMS // dsm.nprocs
                yield from dsm.write("x", lo, hi)
                dsm.arr("x")[lo:hi] = it
                yield from dsm.barrier()
                yield from dsm.read("x")

        r1, _ = run_app(alloc_x, program, nprocs=N)
        r2, _ = run_app(alloc_x, program, nprocs=N)
        assert r1.total_time == r2.total_time
        assert r1.network_bytes == r2.network_bytes
        for a, b in zip(r1.node_stats, r2.node_stats):
            assert a.counters == b.counters

    def test_time_advances_and_breakdown_populated(self):
        def program(dsm):
            yield from dsm.compute(1e6)
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 1
            yield from dsm.barrier()
            yield from dsm.read("x")

        result, _sys = run_app(alloc_x, program, nprocs=N)
        assert result.total_time > 0
        agg = result.aggregate
        assert agg.time.get("compute") == pytest.approx(
            N * 1e6 / result.config.cpu.flop_rate
        )
        assert agg.time.get("sync") > 0
        assert agg.time.get("fault") > 0

    def test_no_logging_summary_is_empty(self):
        def program(dsm):
            yield from dsm.barrier()

        result, _sys = run_app(alloc_x, program, nprocs=2)
        assert result.num_flushes == 0
        assert result.total_log_bytes == 0
        assert result.protocol == "none"

    def test_final_page_states_consistent(self):
        def homes(space, nprocs):
            return [0] * space.npages

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 1
            yield from dsm.barrier()
            yield from dsm.read("x")

        _result, sys_ = run_app(alloc_x, program, nprocs=2, homes=homes)
        for node in sys_.nodes:
            entry = node.pagetable.entry(0)
            if node.id == 0:
                assert entry.home == 0
            else:
                assert entry.state is PageState.CLEAN

    def test_interval_indices_advance_per_sync(self):
        def program(dsm):
            for _ in range(4):
                yield from dsm.barrier()

        _result, sys_ = run_app(alloc_x, program, nprocs=2)
        for node in sys_.nodes:
            assert node.interval_index == 4
            assert node.seal_count == 4
