"""Unit tests for home-assignment policies."""

import pytest

from repro.dsm import (
    block_homes,
    explicit_homes,
    first_page_homes,
    round_robin_homes,
)
from repro.dsm.home import POLICIES
from repro.errors import ConfigError


def test_round_robin():
    assert round_robin_homes(6, 3) == [0, 1, 2, 0, 1, 2]


def test_block_contiguous():
    assert block_homes(8, 4) == [0, 0, 1, 1, 2, 2, 3, 3]


def test_block_uneven_clamps_last_node():
    homes = block_homes(7, 3)
    assert homes == [0, 0, 0, 1, 1, 1, 2]
    assert max(homes) == 2


def test_first_page_homes():
    assert first_page_homes(4, 8) == [0, 0, 0, 0]


def test_explicit_passthrough_and_validation():
    pol = explicit_homes([1, 0, 1])
    assert pol(3, 2) == [1, 0, 1]
    with pytest.raises(ConfigError):
        pol(4, 2)  # wrong page count
    with pytest.raises(ConfigError):
        explicit_homes([5])(1, 2)  # home id out of range


def test_registry_names():
    assert set(POLICIES) == {"round_robin", "block", "first"}


def test_bad_arguments_rejected():
    with pytest.raises(ConfigError):
        round_robin_homes(4, 0)
