"""Unit + property tests for vector clocks and interval records."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import IntervalRecord, IntervalTable, VectorClock
from repro.errors import ProtocolError

vcs = st.lists(st.integers(0, 20), min_size=4, max_size=4).map(VectorClock)


class TestVectorClock:
    def test_zero(self):
        vt = VectorClock.zero(3)
        assert vt.as_tuple() == (0, 0, 0)
        assert vt.total == 0

    def test_tick_increments_one_component(self):
        vt = VectorClock.zero(3).tick(1)
        assert vt.as_tuple() == (0, 1, 0)

    def test_tick_is_pure(self):
        a = VectorClock.zero(2)
        b = a.tick(0)
        assert a.as_tuple() == (0, 0) and b.as_tuple() == (1, 0)

    def test_merge_componentwise_max(self):
        a = VectorClock((1, 5, 0))
        b = VectorClock((2, 3, 4))
        assert a.merge(b).as_tuple() == (2, 5, 4)

    def test_dominates_partial_order(self):
        a = VectorClock((2, 2))
        b = VectorClock((1, 2))
        c = VectorClock((2, 1))
        assert a.dominates(b) and a.dominates(c)
        assert not b.dominates(c) and not c.dominates(b)
        assert a.dominates(a)

    def test_covers_interval(self):
        vt = VectorClock((2, 0))
        assert vt.covers_interval(0, 0)
        assert vt.covers_interval(0, 1)
        assert not vt.covers_interval(0, 2)
        assert not vt.covers_interval(1, 0)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            VectorClock((1,)).merge(VectorClock((1, 2)))

    def test_negative_component_rejected(self):
        with pytest.raises(ProtocolError):
            VectorClock((-1, 0))

    def test_equality_and_hash(self):
        assert VectorClock((1, 2)) == VectorClock((1, 2))
        assert hash(VectorClock((1, 2))) == hash(VectorClock((1, 2)))
        assert VectorClock((1, 2)) != VectorClock((2, 1))

    def test_nbytes(self):
        assert VectorClock.zero(8).nbytes == 32

    @settings(max_examples=100, deadline=None)
    @given(a=vcs, b=vcs)
    def test_property_merge_commutative_and_dominating(self, a, b):
        m = a.merge(b)
        assert m == b.merge(a)
        assert m.dominates(a) and m.dominates(b)

    @settings(max_examples=100, deadline=None)
    @given(a=vcs, b=vcs, c=vcs)
    def test_property_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=100, deadline=None)
    @given(a=vcs, b=vcs)
    def test_property_total_monotone_under_dominance(self, a, b):
        if a.dominates(b):
            assert a.total >= b.total


class TestIntervalRecord:
    def test_nbytes_accounting(self):
        r = IntervalRecord(1, 0, VectorClock((1, 0)), (3, 4, 5))
        assert r.nbytes == IntervalRecord.META_BYTES + 8 + 12

    def test_key(self):
        r = IntervalRecord(2, 7, VectorClock.zero(3), ())
        assert r.key == (2, 7)


class TestIntervalTable:
    def make_record(self, node, index, vt_vals, pages=()):
        return IntervalRecord(node, index, VectorClock(vt_vals), tuple(pages))

    def test_add_and_duplicate(self):
        t = IntervalTable()
        r = self.make_record(0, 0, (1, 0))
        assert t.add(r) is True
        assert t.add(r) is False
        assert len(t) == 1
        assert (0, 0) in t

    def test_get_unknown_raises(self):
        t = IntervalTable()
        with pytest.raises(ProtocolError):
            t.get(0, 3)

    def test_records_not_covered_filters_and_orders(self):
        t = IntervalTable()
        r00 = self.make_record(0, 0, (1, 0))
        r01 = self.make_record(0, 1, (2, 1))
        r10 = self.make_record(1, 0, (0, 1))
        t.add_all([r01, r10, r00])
        out = t.records_not_covered_by(VectorClock((1, 0)))
        # r00 covered (vt[0]=1 >= 0+1); r10 and r01 not; ordered by vt.total
        assert out == [r10, r01]

    def test_records_not_covered_causal_order_is_linear_extension(self):
        t = IntervalTable()
        recs = [
            self.make_record(0, 0, (1, 0, 0)),
            self.make_record(1, 0, (1, 1, 0)),  # saw node0's interval
            self.make_record(0, 1, (2, 1, 0)),  # saw node1's interval
            self.make_record(2, 0, (0, 0, 1)),  # concurrent with all
        ]
        t.add_all(recs)
        out = t.records_not_covered_by(VectorClock.zero(3))
        pos = {r.key: i for i, r in enumerate(out)}
        assert pos[(0, 0)] < pos[(1, 0)] < pos[(0, 1)]

    def test_all_records(self):
        t = IntervalTable()
        r1 = self.make_record(0, 0, (1, 0))
        r2 = self.make_record(1, 0, (1, 1))
        t.add_all([r2, r1])
        assert t.all_records() == [r1, r2]
