"""Live-kill demonstration: an unrecovered crash stalls the cluster.

The paper's motivation in one test: without a recovery protocol, a
single node failure leaves every survivor blocked at the next barrier
or lock, and the whole computation is lost.  Combined with the
heartbeat detector, this is the "failure is detected" moment recovery
starts from.
"""

import numpy as np
import pytest

from repro.core.detector import FailureDetector
from repro.dsm import DsmSystem
from repro.errors import ConfigError
from tests.dsm.conftest import MiniApp, small_config


def barrier_app(iters=6):
    def alloc(space, nprocs):
        space.allocate("x", (64,), np.int32, init=np.zeros(64, np.int32))

    def program(dsm):
        for it in range(iters):
            yield from dsm.compute(1e5)
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = it
            yield from dsm.barrier()
            yield from dsm.read("x")

    return MiniApp(alloc, program)


class TestLiveKill:
    def test_crash_stalls_every_survivor(self):
        system = DsmSystem(barrier_app(), small_config(4))
        result = system.run(kill_node=2, kill_at=0.004)
        assert not result.completed
        # every surviving main is stuck (at a barrier, forever)
        assert {"main0", "main1", "main3"} <= set(result.blocked)
        assert "main2" not in result.blocked  # the victim is dead, not blocked
        assert result.total_time >= 0.004

    def test_crash_after_completion_is_harmless(self):
        system = DsmSystem(barrier_app(iters=1), small_config(2))
        result = system.run(kill_node=1, kill_at=10.0)  # way past the end
        assert result.completed
        assert result.blocked == []

    def test_kill_node_validated(self):
        system = DsmSystem(barrier_app(), small_config(2))
        with pytest.raises(ConfigError):
            system.run(kill_node=9, kill_at=0.001)

    def test_normal_run_reports_completed(self):
        system = DsmSystem(barrier_app(iters=2), small_config(2))
        result = system.run()
        assert result.completed and result.blocked == []

    def test_detector_notices_the_live_crash(self):
        """Heartbeats + live kill: the monitor declares the victim dead
        while the survivors are stuck."""
        system = DsmSystem(barrier_app(iters=50), small_config(4))
        det = FailureDetector(system.sim, system.network, monitor=0,
                              period_s=2e-3, misses_allowed=3)
        system.sim.spawn(det.monitor_loop(), name="hb-monitor")
        hb = [
            system.sim.spawn(FailureDetector.responder_loop(system.network, i),
                             name=f"hb{i}")
            for i in range(1, 4)
        ]
        kill_at = 0.01
        # the crash silences the node's heartbeat responder too
        system.sim.schedule(kill_at, hb[1].kill)
        result = system.run(kill_node=2, kill_at=kill_at)
        assert not result.completed
        assert 2 in det.suspected
        detection_latency = det.suspected[2] - kill_at
        assert 0 < detection_latency < 10 * det.period_s
        for proc in hb:
            proc.kill()