"""Unit tests for manager-side lock and barrier state machines."""

import pytest

from repro.dsm.barrier import BarrierState
from repro.dsm.interval import VectorClock
from repro.dsm.locks import LockState
from repro.errors import SynchronizationError

VT = VectorClock.zero(2)


class TestLockState:
    def test_acquire_free_lock(self):
        s = LockState(0)
        assert s.try_acquire(1, VT) is True
        assert s.held and s.holder == 1

    def test_acquire_held_lock_queues(self):
        s = LockState(0)
        s.try_acquire(1, VT)
        assert s.try_acquire(2, VT) is False
        assert list(n for n, _ in s.queue) == [2]

    def test_release_hands_to_queue_head_fifo(self):
        s = LockState(0)
        s.try_acquire(1, VT)
        s.try_acquire(2, VT)
        s.try_acquire(3, VT)
        nxt = s.release(1)
        assert nxt[0] == 2 and s.holder == 2 and s.held
        nxt = s.release(2)
        assert nxt[0] == 3
        assert s.release(3) is None
        assert not s.held and s.holder is None

    def test_release_by_non_holder_rejected(self):
        s = LockState(0)
        s.try_acquire(1, VT)
        with pytest.raises(SynchronizationError):
            s.release(2)

    def test_release_free_lock_rejected(self):
        s = LockState(0)
        with pytest.raises(SynchronizationError):
            s.release(1)

    def test_grant_count(self):
        s = LockState(0)
        s.try_acquire(1, VT)
        s.try_acquire(2, VT)
        s.release(1)
        assert s.grants == 2


class TestBarrierState:
    def test_completes_when_all_checked_in(self):
        b = BarrierState(3)
        s0 = b.checkin(0, VT, 0)
        assert not s0.triggered
        b.checkin(1, VT, 0)
        assert not b.complete
        b.checkin(2, VT, 0)
        assert b.complete
        assert s0.triggered and s0.value == 0

    def test_double_checkin_rejected(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        with pytest.raises(SynchronizationError):
            b.checkin(0, VT, 0)

    def test_participant_vts_requires_completion(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        with pytest.raises(SynchronizationError):
            b.participant_vts()
        vt1 = VectorClock((1, 1))
        b.checkin(1, vt1, 0)
        assert b.participant_vts() == [(0, VT), (1, vt1)]

    def test_next_episode_resets(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        b.checkin(1, VT, 0)
        b.next_episode()
        assert b.episode == 1
        sig = b.checkin(0, VT, 1)  # same node may check in again
        assert not sig.triggered

    def test_next_episode_requires_completion(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        with pytest.raises(SynchronizationError):
            b.next_episode()

    def test_early_checkin_for_next_episode_is_queued(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        b.checkin(1, VT, 0)
        # node 1 races ahead: checks in for episode 1 before rollover
        b.checkin(1, VT, 1)
        assert b.complete  # episode 0 still complete
        b.next_episode()
        assert b.episode == 1
        sig = b.checkin(0, VT, 1)
        assert sig.triggered  # node 1's early arrival was replayed

    def test_double_early_checkin_rejected(self):
        b = BarrierState(2)
        b.checkin(0, VT, 0)
        b.checkin(1, VT, 0)
        b.checkin(1, VT, 1)
        with pytest.raises(SynchronizationError):
            b.checkin(1, VT, 1)

    def test_two_episodes_ahead_rejected(self):
        b = BarrierState(2)
        with pytest.raises(SynchronizationError):
            b.checkin(0, VT, 2)
