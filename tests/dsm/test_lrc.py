"""Tests for the homeless (TreadMarks-style) LRC protocol.

The extension the paper's related work contrasts against: diffs stay at
their writers, faults gather them per writer, and the diff repository
grows without garbage collection.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.dsm import DsmSystem
from repro.errors import ConfigError
from repro.core import make_hooks_factory
from tests.dsm.conftest import MiniApp, small_config
from tests.dsm.test_coherence_random import (
    CHUNK,
    ELEMS,
    NPROCS,
    barrier_programs,
    reference_final,
)


def run_lrc(alloc, program, nprocs=4, config=None):
    app = MiniApp(alloc, program)
    system = DsmSystem(app, config or small_config(nprocs), coherence="lrc")
    return system.run(), system


def alloc_x(space, nprocs):
    space.allocate("x", (64,), np.int32, init=np.zeros(64, np.int32))


class TestLrcBasics:
    def test_unknown_coherence_rejected(self):
        with pytest.raises(ConfigError):
            DsmSystem(MiniApp(alloc_x, lambda dsm: iter(())),
                      small_config(2), coherence="magic")

    def test_logging_protocols_rejected(self):
        app = MiniApp(alloc_x, lambda dsm: iter(()))
        with pytest.raises(Exception):
            DsmSystem(app, small_config(2), make_hooks_factory("ccl"),
                      coherence="lrc")

    def test_single_writer_propagation(self):
        seen = {}

        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = np.arange(64)
            yield from dsm.barrier()
            yield from dsm.read("x")
            seen[dsm.rank] = dsm.arr("x").copy()

        run_lrc(alloc_x, program, nprocs=4)
        for rank in range(4):
            assert np.array_equal(seen[rank], np.arange(64)), rank

    def test_no_page_transfers_only_diffs(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 7
            yield from dsm.barrier()
            yield from dsm.read("x")

        result, system = run_lrc(alloc_x, program, nprocs=2)
        assert "page" not in result.bytes_by_kind
        assert "lrc_diff_reply" in result.bytes_by_kind

    def test_diff_repository_grows_and_is_never_collected(self):
        def program(dsm):
            for it in range(4):
                if dsm.rank == 0:
                    yield from dsm.write("x")
                    dsm.arr("x")[:] = it + 1
                yield from dsm.barrier()
                yield from dsm.read("x")
                yield from dsm.barrier()

        _result, system = run_lrc(alloc_x, program, nprocs=2)
        # four intervals of writes retained forever (the no-GC cost)
        assert system.nodes[0].diff_repo_bytes > 0
        assert len(system.nodes[0].diff_repo) == 4

    def test_fault_costs_one_round_trip_per_writer(self):
        """Two writers of one page -> the reader pays two diff fetches."""

        def program(dsm):
            if dsm.rank < 2:
                half = 32
                lo, hi = dsm.rank * half, (dsm.rank + 1) * half
                yield from dsm.write("x", lo, hi)
                dsm.arr("x")[lo:hi] = dsm.rank + 1
            yield from dsm.barrier()
            if dsm.rank == 2:
                yield from dsm.read("x")
                assert np.all(dsm.arr("x")[:32] == 1)
                assert np.all(dsm.arr("x")[32:] == 2)

        result, system = run_lrc(alloc_x, program, nprocs=3)
        c = system.nodes[2].stats.counters
        assert c["page_faults"] == 1
        assert c["diff_fetch_round_trips"] == 2

    def test_writer_keeps_own_copy_valid(self):
        def program(dsm):
            if dsm.rank == 0:
                yield from dsm.write("x")
                dsm.arr("x")[:] = 5
            yield from dsm.barrier()
            if dsm.rank == 0:
                yield from dsm.read("x")  # own copy: no fault
                assert dsm.arr("x")[0] == 5

        _result, system = run_lrc(alloc_x, program, nprocs=2)
        assert system.nodes[0].stats.counters.get("page_faults", 0) == 0

    def test_lock_counter_race_free(self):
        def program(dsm):
            for _ in range(4):
                yield from dsm.acquire(1)
                yield from dsm.read("x", 0, 1)
                yield from dsm.write("x", 0, 1)
                dsm.arr("x")[0] += 1
                yield from dsm.release(1)
            yield from dsm.barrier()
            yield from dsm.read("x", 0, 1)
            assert dsm.arr("x")[0] == 4 * dsm.nprocs

        run_lrc(alloc_x, program, nprocs=4)


class TestLrcWorkloads:
    @pytest.mark.parametrize("name", ["fft3d", "mg", "water", "sor", "lu"])
    def test_workloads_verify_under_homeless_lrc(self, name):
        app = make_app(name)
        system = DsmSystem(app, ClusterConfig.ultra5(num_nodes=8),
                           coherence="lrc")
        system.run()
        assert app.verify(system), name


@settings(max_examples=10, deadline=None)
@given(
    increments=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5)),
        min_size=1,
        max_size=16,
    )
)
def test_random_lock_programs_under_lrc(increments):
    """Lock-protected commutative updates reach the exact totals under
    the homeless protocol too."""
    counters = 6

    def alloc(space, nprocs):
        space.allocate("c", (counters,), np.int64,
                       init=np.zeros(counters, np.int64))

    def program(dsm):
        mine = [c for (r, c) in increments if r == dsm.rank]
        for c in mine:
            yield from dsm.acquire(c)
            yield from dsm.read("c", c, c + 1)
            yield from dsm.write("c", c, c + 1)
            dsm.arr("c")[c] += 1
            yield from dsm.release(c)
        yield from dsm.barrier()
        yield from dsm.read("c")
        expected = np.bincount([c for (_r, c) in increments],
                               minlength=counters)
        assert np.array_equal(dsm.arr("c"), expected)

    app = MiniApp(alloc, program)
    DsmSystem(app, small_config(4), coherence="lrc").run()


@settings(max_examples=8, deadline=None)
@given(plan=barrier_programs())
def test_hlrc_and_lrc_agree_on_final_state(plan):
    """The two coherence protocols are interchangeable: identical
    programs end in identical shared state."""
    from repro.apps import gather_global

    def alloc(space, nprocs):
        space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))

    def program(dsm):
        for rnd, owners in enumerate(plan):
            for chunk, owner in enumerate(owners):
                if owner == dsm.rank:
                    lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo:hi] = (rnd + 1) * 10 + owner
            yield from dsm.barrier()

    finals = {}
    for coherence in ("hlrc", "lrc"):
        system = DsmSystem(MiniApp(alloc, program), small_config(NPROCS),
                           coherence=coherence)
        system.run()
        finals[coherence] = gather_global(system, "x")
    assert np.array_equal(finals["hlrc"], finals["lrc"])


@settings(max_examples=15, deadline=None)
@given(plan=barrier_programs())
def test_random_programs_match_reference_under_lrc(plan):
    """The coherence property net, re-run over the homeless protocol."""
    observed = {}

    def alloc(space, nprocs):
        space.allocate("x", (ELEMS,), np.int32, init=np.zeros(ELEMS, np.int32))

    def program(dsm):
        for rnd, owners in enumerate(plan):
            for chunk, owner in enumerate(owners):
                if owner == dsm.rank:
                    lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo:hi] = (rnd + 1) * 100 + owner
            yield from dsm.barrier()
        yield from dsm.read("x")
        observed[dsm.rank] = dsm.arr("x").copy()

    app = MiniApp(alloc, program)
    DsmSystem(app, small_config(NPROCS), coherence="lrc").run()
    ref = reference_final(plan)
    for rank in range(NPROCS):
        assert np.array_equal(observed[rank], ref), f"rank {rank} diverged"
