"""Tests for adaptive home migration (extension)."""

import numpy as np
import pytest

from repro.apps import make_app
from repro.config import ClusterConfig
from repro.core import make_hooks_factory
from repro.dsm import DsmSystem
from tests.dsm.conftest import MiniApp, small_config

CFG8 = ClusterConfig.ultra5(num_nodes=8)


def sole_writer_app(iters=4):
    """Rank 1 writes a page homed (round-robin) elsewhere, every phase."""

    def alloc(space, nprocs):
        space.allocate("x", (64,), np.int32, init=np.zeros(64, np.int32))

    def program(dsm):
        for it in range(iters):
            if dsm.rank == 1:
                yield from dsm.write("x")
                dsm.arr("x")[:] = it + 1
            yield from dsm.barrier()
            if dsm.rank == 2:
                yield from dsm.read("x")
                assert dsm.arr("x")[0] == it + 1
            yield from dsm.barrier()

    return MiniApp(alloc, program)


class TestMigrationMechanics:
    def test_logging_protocols_rejected(self):
        app = sole_writer_app()
        with pytest.raises(Exception):
            DsmSystem(app, small_config(4), make_hooks_factory("ccl"),
                      coherence="hlrc-migrate")

    def test_sole_writer_page_migrates_to_its_writer(self):
        app = sole_writer_app()
        system = DsmSystem(app, small_config(4), coherence="hlrc-migrate")
        result = system.run()
        # page 0 was homed at node 0 (round robin); it moves to writer 1
        assert all(n.pagetable.entry(0).home == 1 for n in system.nodes)
        assert result.aggregate.counters.get("homes_gained", 0) >= 1

    def test_tables_agree_after_migration(self):
        app = sole_writer_app()
        system = DsmSystem(app, small_config(4), coherence="hlrc-migrate")
        system.run()
        for p in range(system.space.npages):
            homes = {n.pagetable.entry(p).home for n in system.nodes}
            assert len(homes) == 1, f"page {p} home tables diverged: {homes}"

    def test_writer_stops_paying_diffs_after_migration(self):
        app = sole_writer_app(iters=6)
        system = DsmSystem(app, small_config(4), coherence="hlrc-migrate")
        result = system.run()
        baseline = DsmSystem(sole_writer_app(iters=6), small_config(4)).run()
        # after the hand-off the writes are home writes: fewer diffs
        assert (
            result.aggregate.counters.get("diffs_created", 0)
            < baseline.aggregate.counters.get("diffs_created", 0)
        )

    def test_multi_writer_pages_never_migrate(self):
        def alloc(space, nprocs):
            space.allocate("x", (64,), np.int32, init=np.zeros(64, np.int32))

        def program(dsm):
            half = 32
            for it in range(3):
                if dsm.rank in (1, 2):
                    lo = 0 if dsm.rank == 1 else half
                    hi = half if dsm.rank == 1 else 64
                    yield from dsm.write("x", lo, hi)
                    dsm.arr("x")[lo:hi] = it
                yield from dsm.barrier()

        system = DsmSystem(MiniApp(alloc, program), small_config(4),
                           coherence="hlrc-migrate")
        result = system.run()
        assert result.aggregate.counters.get("homes_gained", 0) == 0


class TestMigrationProperties:
    def test_random_programs_agree_with_static_hlrc(self):
        """Property: migration never changes program-visible results."""
        from hypothesis import given, settings

        from repro.apps import gather_global
        from tests.dsm.test_coherence_random import (
            CHUNK,
            NPROCS,
            barrier_programs,
        )

        @settings(max_examples=10, deadline=None)
        @given(plan=barrier_programs())
        def check(plan):
            def alloc(space, nprocs):
                space.allocate("x", (256,), np.int32,
                               init=np.zeros(256, np.int32))

            def program(dsm):
                for rnd, owners in enumerate(plan):
                    for chunk, owner in enumerate(owners):
                        if owner == dsm.rank:
                            lo, hi = chunk * CHUNK, (chunk + 1) * CHUNK
                            yield from dsm.write("x", lo, hi)
                            dsm.arr("x")[lo:hi] = (rnd + 1) * 10 + owner
                    yield from dsm.barrier()

            finals = {}
            for coherence in ("hlrc", "hlrc-migrate"):
                system = DsmSystem(MiniApp(alloc, program),
                                   small_config(NPROCS), coherence=coherence)
                system.run()
                finals[coherence] = gather_global(system, "x")
            assert np.array_equal(finals["hlrc"], finals["hlrc-migrate"])

        check()


class TestMigrationWorkloads:
    @pytest.mark.parametrize("name", ["fft3d", "mg", "shallow", "water",
                                      "sor", "lu"])
    def test_workloads_verify_under_migration(self, name):
        app = make_app(name)
        system = DsmSystem(app, CFG8, coherence="hlrc-migrate")
        system.run()
        assert app.verify(system), name

    def test_sor_converges_to_aligned_homes(self):
        """Round-robin start, writer-aligned finish: migration discovers
        the placement the A4 ablation shows is optimal."""
        app = make_app("sor", n=128, iters=10)
        system = DsmSystem(app, CFG8, coherence="hlrc-migrate")
        result = system.run()
        assert app.verify(system)
        static = DsmSystem(make_app("sor", n=128, iters=10), CFG8).run()
        assert (
            result.aggregate.counters.get("diffs_created", 0)
            < 0.5 * static.aggregate.counters.get("diffs_created", 0)
        )
        assert result.network_bytes < static.network_bytes