"""Unit tests for the reliable-delivery transport."""

import pytest

from repro.config import NetworkConfig
from repro.dsm.reliable import (
    ReliableTransport,
    RetransmitPolicy,
    UNSEQUENCED_KINDS,
)
from repro.sim import FaultPlan, LinkFaults, NetMessage, Network, Simulator


def build(plan, num_nodes=4, policy=None, **net_kw):
    sim = Simulator()
    net = Network(sim, NetworkConfig(**net_kw), num_nodes=num_nodes,
                  fault_plan=plan)
    return sim, net, ReliableTransport(net, sim, policy=policy)


def pump(sim, transport, payloads, src=0, dst=1, kind="x"):
    """Send ``payloads`` over one link; return them in arrival order."""
    got = []

    def sender():
        for p in payloads:
            yield from transport.send(
                NetMessage(src=src, dst=dst, kind=kind, size=64, payload=p)
            )

    def receiver():
        while True:
            m = yield transport.mailbox(dst).get()
            got.append(m.payload)

    sim.spawn(sender(), name="s")
    rx = sim.spawn(receiver(), name="r")
    sim.run(detect_deadlock=False)
    rx.kill()
    return got


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetransmitPolicy(max_retries=-1)


class TestReliableDelivery:
    def test_exactly_once_in_order_under_drops(self):
        sim, net, tr = build(FaultPlan.uniform(0, drop=0.4))
        got = pump(sim, tr, list(range(50)))
        assert got == list(range(50))
        assert tr.retransmits > 0
        assert tr.summary()["unacked_in_flight"] == 0

    def test_exactly_once_under_duplication(self):
        sim, net, tr = build(FaultPlan.uniform(0, dup=0.8))
        got = pump(sim, tr, list(range(50)))
        assert got == list(range(50))
        assert tr.dups_dropped > 0

    def test_fifo_restored_under_reordering(self):
        sim, net, tr = build(FaultPlan.uniform(2, reorder=0.6))
        got = pump(sim, tr, list(range(50)))
        assert got == list(range(50))
        assert tr.held_frames > 0

    def test_everything_at_once(self):
        sim, net, tr = build(
            FaultPlan.uniform(5, drop=0.2, dup=0.2, delay=0.3, reorder=0.3)
        )
        got = pump(sim, tr, list(range(80)))
        assert got == list(range(80))

    def test_links_sequence_independently(self):
        sim, net, tr = build(FaultPlan.uniform(1, drop=0.3))
        got = []

        def sender(src, dst, tag):
            for i in range(20):
                yield from tr.send(
                    NetMessage(src=src, dst=dst, kind="x", size=32,
                               payload=(tag, i))
                )

        def receiver(dst):
            while True:
                m = yield tr.mailbox(dst).get()
                got.append(m.payload)

        sim.spawn(sender(0, 2, "a"), name="sa")
        sim.spawn(sender(1, 2, "b"), name="sb")
        rx = sim.spawn(receiver(2), name="r")
        sim.run(detect_deadlock=False)
        rx.kill()
        assert [i for t, i in got if t == "a"] == list(range(20))
        assert [i for t, i in got if t == "b"] == list(range(20))

    def test_unsequenced_kinds_bypass_the_machinery(self):
        sim, net, tr = build(FaultPlan.uniform(0, drop=1.0))
        for kind in sorted(UNSEQUENCED_KINDS - {"rel_ack"}):
            sig = tr.post(NetMessage(src=0, dst=1, kind=kind, size=8))
            assert sig is not None
        sim.run(detect_deadlock=False)
        # every frame was dropped and nothing retransmitted them
        assert tr.retransmits == 0
        assert not tr._pending

    def test_lost_acks_self_heal(self):
        # acks from 1 to 0 always die; data still goes exactly-once and
        # the sender eventually abandons after bounded retries
        plan = FaultPlan(seed=0, links={(1, 0): LinkFaults(drop=1.0)})
        policy = RetransmitPolicy(max_retries=3)
        sim, net, tr = build(plan, policy=policy)
        got = pump(sim, tr, [1, 2, 3])
        assert got == [1, 2, 3]
        assert tr.dups_dropped > 0      # retransmits arrived as dups
        assert tr.abandoned == 3        # never acked, gave up cleanly

    def test_dead_peer_bounded_retries(self):
        plan = FaultPlan(seed=0).kill(1, 0.0)
        policy = RetransmitPolicy(max_retries=2)
        sim, net, tr = build(plan, policy=policy)
        got = pump(sim, tr, [1, 2])
        assert got == []
        assert tr.abandoned == 2
        assert tr.retransmits == 4  # 2 frames x max_retries

    def test_delegates_to_network(self):
        sim, net, tr = build(FaultPlan.uniform(0, drop=0.1))
        assert tr.num_nodes == net.num_nodes
        assert tr.config is net.config
        assert tr.mailbox(2) is net.mailbox(2)
