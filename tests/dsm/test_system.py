"""Unit tests for the system assembler and RunResult."""

import numpy as np
import pytest

from repro.dsm import DsmSystem
from repro.errors import ApplicationError, ConfigError
from tests.dsm.conftest import MiniApp, small_config


def noop_program(dsm):
    yield from dsm.barrier()


class TestSystemAssembly:
    def test_empty_allocation_rejected(self):
        app = MiniApp(lambda s, n: None, noop_program)
        with pytest.raises(ApplicationError):
            DsmSystem(app, small_config(2))

    def test_bad_home_map_rejected(self):
        app = MiniApp(
            lambda s, n: s.allocate("x", (256,), np.float64),  # 8 pages
            noop_program,
            homes=lambda s, n: [0],  # wrong length
        )
        with pytest.raises(ConfigError):
            DsmSystem(app, small_config(2))

    def test_default_homes_round_robin(self):
        app = MiniApp(
            lambda s, n: s.allocate("x", (256,), np.float64),
            noop_program,
        )
        system = DsmSystem(app, small_config(4))
        assert system.homes == [p % 4 for p in range(system.space.npages)]

    def test_one_node_and_one_server_per_rank(self):
        app = MiniApp(lambda s, n: s.allocate("x", (8,), np.int64),
                      noop_program)
        system = DsmSystem(app, small_config(3))
        assert len(system.nodes) == 3
        assert len(system.disks) == 3
        assert [n.id for n in system.nodes] == [0, 1, 2]


class TestRunResult:
    def make_result(self):
        app = MiniApp(
            lambda s, n: s.allocate("x", (64,), np.int32,
                                    init=np.zeros(64, np.int32)),
            self._program,
        )
        return DsmSystem(app, small_config(2)).run()

    @staticmethod
    def _program(dsm):
        if dsm.rank == 0:
            yield from dsm.write("x")
            dsm.arr("x")[:] = 1
        yield from dsm.barrier()
        yield from dsm.read("x")

    def test_result_fields_populated(self):
        r = self.make_result()
        assert r.total_time > 0
        assert r.network_msgs > 0
        assert r.network_bytes > 0
        assert r.protocol == "none"
        assert len(r.node_stats) == 2
        assert r.bytes_by_kind  # per-kind traffic recorded

    def test_logging_metrics_zero_without_logging(self):
        r = self.make_result()
        assert r.num_flushes == 0
        assert r.total_log_bytes == 0
        assert r.mean_flush_bytes == 0.0

    def test_aggregate_sums_nodes(self):
        r = self.make_result()
        agg = r.aggregate
        total = sum(s.counters.get("barriers", 0) for s in r.node_stats)
        assert agg.counters["barriers"] == total
