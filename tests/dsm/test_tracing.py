"""Tests for protocol-event tracing through the DSM system."""

import numpy as np

from repro.config import ClusterConfig
from repro.dsm import DsmSystem
from repro.sim.trace import Tracer
from tests.dsm.conftest import MiniApp


def make_system(tracer):
    def alloc(space, nprocs):
        space.allocate("x", (64,), np.int32, init=np.zeros(64, np.int32))

    def program(dsm):
        if dsm.rank == 0:
            yield from dsm.write("x")
            dsm.arr("x")[:] = 1
        yield from dsm.acquire(1)
        yield from dsm.release(1)
        yield from dsm.barrier()
        yield from dsm.read("x")

    app = MiniApp(alloc, program, homes=lambda s, n: [0] * s.npages)
    cfg = ClusterConfig.ultra5(num_nodes=2, page_size=256)
    return DsmSystem(app, cfg, tracer=tracer)


def test_tracer_disabled_by_default_records_nothing():
    system = make_system(None)
    system.run()
    assert len(system.tracer) == 0


def test_tracer_records_sync_and_fault_events():
    tracer = Tracer(enabled=True)
    system = make_system(tracer)
    system.run()
    events = {e.event for e in tracer.events}
    assert {"acquire", "release", "barrier", "seal", "fault"} <= events
    # per-node filtering works and timestamps are monotone per node
    for node in (0, 1):
        times = [e.time for e in tracer.filter(node=node)]
        assert times == sorted(times)
    # only the non-home rank faults
    fault_nodes = {e.node for e in tracer.filter(event="fault")}
    assert fault_nodes == {1}


def test_trace_details_carry_ids():
    tracer = Tracer(enabled=True)
    system = make_system(tracer)
    system.run()
    assert {e.detail for e in tracer.filter(event="acquire")} == {1}
    seals = tracer.filter(event="seal", node=0)
    assert [e.detail for e in seals] == list(range(len(seals)))
