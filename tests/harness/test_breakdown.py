"""Tests for the execution-breakdown report."""

import pytest

from repro.config import ClusterConfig
from repro.harness import breakdown_rows, render_breakdown, run_application
from repro.harness.cli import main

CFG = ClusterConfig.ultra5(num_nodes=4)


@pytest.fixture(scope="module")
def result():
    r, _system = run_application("sor", "ccl", CFG, scale="test")
    return r


def test_rows_cover_every_node_plus_total(result):
    rows = breakdown_rows(result)
    assert len(rows) == 5  # 4 nodes + aggregate
    assert rows[-1]["node"] == -1.0
    assert rows[-1]["total_s"] == pytest.approx(4 * result.total_time)


def test_buckets_plus_other_sum_to_total(result):
    from repro.harness.breakdown import TIME_BUCKETS

    for row in breakdown_rows(result)[:-1]:
        covered = sum(row[b] for b in TIME_BUCKETS) + row["other"]
        assert covered == pytest.approx(row["total_s"], rel=1e-6)
        assert row["other"] >= 0


def test_counters_present(result):
    rows = breakdown_rows(result)
    assert rows[-1]["page_faults"] > 0
    assert rows[-1]["barriers"] > 0


def test_render_contains_header_and_all_row(result):
    text = render_breakdown(result)
    assert "Execution breakdown" in text
    assert "ALL" in text
    assert "page_faults" in text


def test_cli_breakdown_command(capsys):
    assert main(
        ["breakdown", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--protocol", "ml", "--no-artifacts"]
    ) == 0
    out = capsys.readouterr().out
    assert "Execution breakdown" in out and "'ml'" in out


def test_aggregate_row_is_the_merge_of_node_rows(result):
    """The ALL row must equal Counter.merge / TimeBreakdown.merge of
    every node: breakdown_rows reports sums, not averages."""
    rows = breakdown_rows(result)
    node_rows, all_row = rows[:-1], rows[-1]
    for counter in ("page_faults", "diffs_created", "barriers"):
        assert all_row[counter] == pytest.approx(
            sum(r[counter] for r in node_rows)
        )
    for bucket in ("compute", "sync", "fault"):
        assert all_row[bucket] == pytest.approx(
            sum(r[bucket] for r in node_rows)
        )
