"""Chaos failures dump a telemetry bundle next to the repro command."""

import argparse

from repro.core.chaos import ChaosCase, ChaosReport
from repro.harness.chaoscmd import _dump_failure_bundles, _factories
from repro.config import ClusterConfig
from repro.obs.artifacts import load_bundle
from repro.sim.trace import Tracer


def _args(tmp_path) -> argparse.Namespace:
    return argparse.Namespace(
        drop=0.08, dup=0.08, delay_rate=0.12, reorder=0.12,
        disk_torn=0.0, disk_write_error=0.0, disk_bitrot=0.0,
        replication=1, zones=None, zone_wan=0.0,
        zone_kill=None, zone_partition=None,
        runs_dir=str(tmp_path),
    )


def _failing_case(seed: int = 3) -> ChaosCase:
    return ChaosCase(
        app="sor", protocol="ccl", seed=seed, crash_node=1,
        crash_time=0.01, stop_at=2, live_kill=False, ok=False,
        detail="state mismatch", mismatches=["page 3 contents"],
        repro_extra="--scale test --nodes 4",
    )


def test_failure_dump_writes_traced_bundle(tmp_path, capsys):
    report = ChaosReport(cases=[_failing_case()])
    config = ClusterConfig.ultra5(num_nodes=4)
    _dump_failure_bundles(report, _factories(["sor"], "test"), config,
                          _args(tmp_path))
    out = capsys.readouterr().out
    assert "telemetry bundle for seed 3" in out
    (bundle,) = list(tmp_path.iterdir())
    manifest = load_bundle(str(bundle))
    assert manifest["command"] == "chaos-failure"
    assert manifest["case"]["seed"] == 3
    assert "--seed 3" in manifest["repro_command"]
    # the re-run was traced: the causal spans are preserved on disk
    tracer = Tracer.load(str(bundle / manifest["trace_file"]))
    assert tracer.spans and tracer.edges


def test_bundles_capped_and_deduped(tmp_path, capsys):
    # 5 failing crash instants of the same execution -> one bundle
    cases = [_failing_case(seed=7) for _ in range(5)]
    report = ChaosReport(cases=cases)
    config = ClusterConfig.ultra5(num_nodes=4)
    _dump_failure_bundles(report, _factories(["sor"], "test"), config,
                          _args(tmp_path))
    assert len(list(tmp_path.iterdir())) == 1
