"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.harness.cli import main


def test_table1_prints(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "3D-FFT" in out and "Water" in out


def test_table2_single_app(capsys):
    assert main(["table2", "--apps", "sor", "--scale", "test", "--nodes", "4"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "CCL" in out


def test_fig4_with_csv(tmp_path, capsys):
    prefix = str(tmp_path / "out")
    code = main(
        ["fig4", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--csv", prefix]
    )
    assert code == 0
    assert "Figure 4" in capsys.readouterr().out
    assert (tmp_path / "out_fig4.csv").exists()


def test_fig5_runs_recovery(capsys):
    assert main(
        ["fig5", "--apps", "sor", "--scale", "test", "--nodes", "4"]
    ) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
