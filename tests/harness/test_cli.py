"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.harness.cli import main


def test_table1_prints(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "3D-FFT" in out and "Water" in out


def test_table2_single_app(tmp_path, capsys):
    assert main(
        ["table2", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--runs-dir", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "CCL" in out
    # the run wrote a comparable artifact bundle
    bundles = list(tmp_path.iterdir())
    assert len(bundles) == 1
    manifest = json.loads((bundles[0] / "manifest.json").read_text())
    assert manifest["command"] == "table2"
    assert {r["protocol"] for r in manifest["results"]} == {"none", "ml", "ccl"}


def test_fig4_with_csv(tmp_path, capsys):
    prefix = str(tmp_path / "out")
    code = main(
        ["fig4", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--csv", prefix, "--no-artifacts"]
    )
    assert code == 0
    assert "Figure 4" in capsys.readouterr().out
    assert (tmp_path / "out_fig4.csv").exists()


def test_fig5_runs_recovery(capsys):
    assert main(
        ["fig5", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--no-artifacts"]
    ) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_quiet_drops_progress_but_keeps_results(tmp_path, capsys):
    assert main(
        ["table2", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--runs-dir", str(tmp_path), "--quiet"]
    ) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "run bundle" not in out  # progress lines suppressed


def test_json_mode_emits_one_document(tmp_path, capsys):
    assert main(
        ["critical-path", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--protocol", "ccl", "--runs-dir", str(tmp_path), "--json"]
    ) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "critical_path" in doc and "output" in doc
    (label, payload), = doc["critical_path"].items()
    assert label.startswith("sor/ccl")
    assert 0.0 <= payload["overlap_fraction"] <= 1.0


def test_timeline_writes_valid_chrome_trace(tmp_path, capsys):
    out_file = tmp_path / "timeline.json"
    assert main(
        ["timeline", "--apps", "sor", "--scale", "test", "--nodes", "4",
         "--runs-dir", str(tmp_path / "runs"), "--out", str(out_file)]
    ) == 0
    assert "schema check: ok" in capsys.readouterr().out
    doc = json.loads(out_file.read_text())
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    # the bundle also captured the trace for later analysis
    bundles = list((tmp_path / "runs").iterdir())
    assert len(bundles) == 1
    assert (bundles[0] / "trace.jsonl").exists()


def test_compare_round_trips_bundles(tmp_path, capsys):
    for _ in range(2):
        assert main(
            ["table2", "--apps", "sor", "--scale", "test", "--nodes", "4",
             "--runs-dir", str(tmp_path), "--quiet"]
        ) == 0
    a, b = sorted(p.name for p in tmp_path.iterdir())
    capsys.readouterr()
    assert main(
        ["compare", str(tmp_path / a), str(tmp_path / b), "--no-artifacts"]
    ) == 0
    out = capsys.readouterr().out
    assert "compare:" in out
    # identical deterministic runs: every shared metric matches
    assert "no differences" in out


def test_compare_requires_two_bundles(capsys):
    assert main(["compare", "--no-artifacts"]) == 2


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
