"""Parallel fan-out must be byte-identical to serial execution.

``parallel_map`` gathers process-pool results in submission order, so
any deterministic task function yields the same list at any ``--jobs``
level; these tests pin that contract for the raw helper, for ``sweep``,
and for the real simulation task the CLI fans out.
"""

from typing import Any, Dict

from repro.config import ClusterConfig
from repro.harness import parallel_map, sweep
from repro.harness.runner import logging_comparison_task

CFG = ClusterConfig.ultra5(num_nodes=8)


def square_task(n: int) -> int:
    # module-level: process pools pickle tasks by qualified name
    return n * n


def measure_scaled(label: str, params: Dict[str, Any]) -> Dict[str, float]:
    return {"value": params["x"] * 10.0}


class TestParallelMap:
    def test_serial_matches_parallel(self):
        items = list(range(20))
        assert parallel_map(square_task, items, jobs=1) == \
            parallel_map(square_task, items, jobs=4)

    def test_order_preserved(self):
        assert parallel_map(square_task, [3, 1, 2], jobs=2) == [9, 1, 4]

    def test_empty_and_single_item(self):
        assert parallel_map(square_task, [], jobs=4) == []
        assert parallel_map(square_task, [7], jobs=4) == [49]


class TestSweepJobs:
    VARIANTS = [(f"v{i}", {"x": i}) for i in range(5)]

    def test_sweep_parallel_matches_serial(self):
        serial = sweep(self.VARIANTS, measure_scaled, jobs=1)
        parallel = sweep(self.VARIANTS, measure_scaled, jobs=3)
        assert [(p.label, p.metrics) for p in serial] == \
            [(p.label, p.metrics) for p in parallel]


class TestSimulationFanout:
    def test_logging_comparison_task_parallel_is_deterministic(self):
        """The CLI's fig4/table2 fan-out: same rows at any jobs level."""
        specs = [
            dict(app_name="fft3d", config=CFG, scale="test",
                 paper_mode=False),
            dict(app_name="water", config=CFG, scale="test",
                 paper_mode=False),
        ]
        serial = parallel_map(logging_comparison_task, specs, jobs=1)
        fanned = parallel_map(logging_comparison_task, specs, jobs=2)
        assert [c.app_name for c in serial] == [c.app_name for c in fanned]
        for a, b in zip(serial, fanned):
            assert a.rows == b.rows
