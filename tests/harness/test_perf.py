"""Tests for the perf suite plumbing (fast paths only; no full timing)."""

import json

from repro.harness.perf import check_kernels, run_app_benchmarks, write_perf_json


def test_check_kernels_passes():
    assert check_kernels(cases=10) == 10


def test_write_perf_json_is_stable(tmp_path):
    path = tmp_path / "perf.json"
    report = {"b": 1, "a": {"z": 2.5, "y": 3}}
    write_perf_json(report, str(path))
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == report
    # keys sorted -> diff-friendly when committed
    assert text.index('"a"') < text.index('"b"')


def test_app_benchmark_runs_one_app():
    out = run_app_benchmarks(apps=["fft3d"], scale="test")
    assert set(out) == {"fft3d"}
    assert out["fft3d"] >= 0.0
