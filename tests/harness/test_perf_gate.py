"""Unit tests for ``benchmarks/check_perf_gate.py`` (schema skip +
failure attribution), without running the actual kernel timings."""

import importlib.util
import json
from pathlib import Path

import pytest

_GATE_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "check_perf_gate.py")
_spec = importlib.util.spec_from_file_location("check_perf_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _write_history(tmp_path, entries):
    path = tmp_path / "history.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return str(path)


def test_load_baseline_picks_most_recent_per_metric(tmp_path):
    path = _write_history(tmp_path, [
        {"ts": "t0", "git_rev": "aaa",
         "kernels_ns_per_op": {"apply_diff_dense": 100.0}},
        {"ts": "t1", "git_rev": "bbb", "sim_events_per_sec": 1e6},
        {"ts": "t2", "git_rev": "ccc", "sim_events_per_sec": 2e6},
    ])
    base_k, base_s = gate.load_baseline(path)
    assert base_k["git_rev"] == "aaa"   # only entry with kernel timings
    assert base_s["git_rev"] == "ccc"   # most recent with events/s


def test_load_baseline_skips_unknown_schema_with_warning(tmp_path, capsys):
    """A newer writer's entries are skipped, not a crash (satellite #2)."""
    path = _write_history(tmp_path, [
        {"ts": "t0", "git_rev": "old", "schema": 1, "sim_events_per_sec": 1e6},
        {"ts": "t1", "git_rev": "new", "schema": 99, "sim_events_per_sec": 9e6,
         "kernels_ns_per_op": {"apply_diff_dense": 1.0}},
    ])
    base_k, base_s = gate.load_baseline(path)
    out = capsys.readouterr().out
    assert "WARNING" in out and "unknown schema 99" in out
    assert "rev new" in out
    # the schema-99 entry contributed nothing
    assert base_s["git_rev"] == "old"
    assert base_k == {}


def test_load_baseline_missing_schema_field_means_schema_one(tmp_path, capsys):
    path = _write_history(tmp_path, [
        {"ts": "t0", "git_rev": "pre", "sim_events_per_sec": 5e5},
    ])
    _base_k, base_s = gate.load_baseline(path)
    assert base_s["git_rev"] == "pre"
    assert "WARNING" not in capsys.readouterr().out


def test_load_baseline_all_unreadable_exits(tmp_path):
    path = _write_history(tmp_path, [
        {"ts": "t0", "schema": 99}, {"ts": "t1", "schema": "weird"},
    ])
    with pytest.raises(SystemExit, match="no readable entries"):
        gate.load_baseline(path)


def test_load_baseline_empty_file_exits(tmp_path):
    path = tmp_path / "history.jsonl"
    path.write_text("")
    with pytest.raises(SystemExit, match="empty"):
        gate.load_baseline(str(path))


def test_attribute_failure_ranks_regressed_kernel_first():
    base_k = {"ts": "t0", "git_rev": "aaa",
              "kernels_ns_per_op": {"apply_diff_dense": 100.0,
                                    "create_diff_dense": 200.0}}
    base_s = {"ts": "t0", "git_rev": "aaa", "sim_events_per_sec": 1e6}
    best = {
        "apply_diff_dense": {"ns_per_op": 500.0},
        "create_diff_dense": {"ns_per_op": 205.0},
        "sim_event_throughput": {"events_per_sec": 9.5e5},
    }
    text = gate.attribute_failure(best, base_k, base_s)
    first_rank = next(ln for ln in text.splitlines()
                      if ln.strip().startswith("#1"))
    assert "apply_diff_dense" in first_rank
    assert "sim_events_per_sec" in text
