"""Tests for result persistence."""

import pytest

from repro.config import ClusterConfig
from repro.core import run_multi_recovery_experiment, run_recovery_experiment
from repro.apps import make_app
from repro.harness import (
    load_json,
    run_application,
    run_result_to_dict,
    save_json,
)

CFG = ClusterConfig.ultra5(num_nodes=4)


@pytest.fixture(scope="module")
def run_result():
    r, _s = run_application("sor", "ccl", CFG, scale="test")
    return r


def test_run_result_snapshot_fields(run_result):
    d = run_result_to_dict(run_result)
    assert d["kind"] == "run"
    assert d["protocol"] == "ccl"
    assert d["total_time_s"] > 0
    assert d["log"]["num_flushes"] > 0
    assert len(d["nodes"]) == 4
    assert d["nodes"][0]["counters"]


def test_save_and_load_round_trip(tmp_path, run_result):
    rec = run_recovery_experiment(make_app("sor"), CFG, "ccl", failed_node=1)
    multi = run_multi_recovery_experiment(
        make_app("sor"), CFG, "ccl", failed_nodes=(1, 2)
    )
    path = tmp_path / "results.json"
    save_json([run_result, rec, multi, {"kind": "custom", "x": 1}], str(path))
    loaded = load_json(str(path))
    assert [d["kind"] for d in loaded] == [
        "run", "recovery", "multi_recovery", "custom"
    ]
    assert loaded[1]["bit_exact"] is True
    assert loaded[2]["failed_nodes"] == [1, 2]


def test_unserialisable_rejected(tmp_path):
    with pytest.raises(TypeError):
        save_json([object()], str(tmp_path / "x.json"))
