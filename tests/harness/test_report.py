"""Tests for the one-shot report generator."""

import pytest

from repro.config import ClusterConfig
from repro.harness import generate_report
from repro.harness.cli import main

CFG = ClusterConfig.ultra5(num_nodes=4)


@pytest.fixture(scope="module")
def report():
    return generate_report(CFG, scale="test", apps=["sor"], failed_node=1)


def test_report_contains_every_artefact(report):
    for heading in (
        "# Evaluation report",
        "## Table 1",
        "## Table 2",
        "## Figure 4",
        "## Figure 5",
        "## Claim checks",
    ):
        assert heading in report


def test_report_includes_both_configurations(report):
    assert "[paper-faithful configuration]" in report


def test_claim_checks_all_pass(report):
    assert "VIOLATED" not in report
    assert "OK" in report


def test_report_without_recovery_section():
    text = generate_report(CFG, scale="test", apps=["sor"],
                           include_recovery=False)
    assert "## Figure 5" not in text
    assert "## Figure 4" in text


def test_cli_report_to_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    code = main(["report", "--apps", "sor", "--scale", "test",
                 "--nodes", "4", "--failed-node", "1", "--out", str(out)])
    assert code == 0
    assert "report written" in capsys.readouterr().out
    assert "# Evaluation report" in out.read_text()
