"""Tests for the experiment runners."""

import pytest

from repro.config import ClusterConfig
from repro.errors import HarnessError
from repro.harness import (
    app_kwargs,
    logging_comparison,
    recovery_comparison,
    run_application,
)

CFG = ClusterConfig.ultra5(num_nodes=8)


class TestScales:
    def test_known_scales(self):
        assert app_kwargs("fft3d", "test")["n"] == 16
        assert app_kwargs("fft3d", "bench")["n"] == 32
        assert app_kwargs("fft3d", "paper")["paper_scale"] is True

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            app_kwargs("fft3d", "galactic")


class TestRunApplication:
    def test_runs_and_verifies(self):
        result, system = run_application("sor", "ccl", CFG, scale="test")
        assert result.total_time > 0
        assert result.protocol == "ccl"
        assert len(system.nodes) == 8

    def test_app_overrides(self):
        result, _ = run_application("sor", "none", CFG, scale="test", iters=2)
        assert result.total_time > 0


class TestLoggingComparison:
    @pytest.fixture(scope="class")
    def cmp(self):
        return logging_comparison("fft3d", CFG, scale="test")

    def test_has_all_rows(self, cmp):
        assert [r.protocol for r in cmp.rows] == ["none", "ml", "ccl"]

    def test_normalized_times(self, cmp):
        assert cmp.normalized_time("none") == 1.0
        assert cmp.normalized_time("ml") > 1.0
        assert 1.0 <= cmp.normalized_time("ccl") < cmp.normalized_time("ml")

    def test_log_statistics(self, cmp):
        ml, ccl = cmp.row("ml"), cmp.row("ccl")
        assert ml.total_log_mb > ccl.total_log_mb > 0
        assert ml.num_flushes > 0 and ccl.num_flushes > 0
        assert 0 < cmp.ccl_log_fraction < 0.5

    def test_none_row_has_no_log(self, cmp):
        none = cmp.row("none")
        assert none.total_log_mb == 0
        assert none.num_flushes == 0

    def test_missing_protocol_raises(self, cmp):
        with pytest.raises(HarnessError):
            cmp.row("bogus")


class TestRecoveryComparison:
    @pytest.fixture(scope="class")
    def rec(self):
        return recovery_comparison("fft3d", CFG, scale="test", failed_node=3)

    def test_reexecution_is_unity(self, rec):
        assert rec.normalized("reexec") == 1.0
        assert rec.reduction("reexec") == 0.0

    def test_recoveries_verified_and_faster(self, rec):
        assert rec.ml.ok and rec.ccl.ok
        assert rec.normalized("ml") < 1.0
        assert rec.normalized("ccl") < 1.0

    def test_reduction_consistency(self, rec):
        for which in ("ml", "ccl"):
            assert rec.reduction(which) == pytest.approx(
                1.0 - rec.normalized(which)
            )
