"""Tests for table/figure rendering and CSV emission."""

import pytest

from repro.config import ClusterConfig
from repro.harness import (
    fig4_rows,
    fig5_rows,
    logging_comparison,
    recovery_comparison,
    render_fig4,
    render_fig5,
    render_sweep,
    render_table1,
    render_table2_panel,
    sweep,
    table1_rows,
    write_csv,
)

CFG = ClusterConfig.ultra5(num_nodes=4)


@pytest.fixture(scope="module")
def cmp_sor():
    return logging_comparison("sor", CFG, scale="test")


@pytest.fixture(scope="module")
def rec_sor():
    return recovery_comparison("sor", CFG, scale="test", failed_node=1)


class TestTable1:
    def test_rows_cover_paper_apps(self):
        rows = table1_rows(["fft3d", "mg", "shallow", "water"])
        assert [r["program"] for r in rows] == ["3D-FFT", "MG", "Shallow", "Water"]
        # paper-scale dataset strings (Table 1 documents the paper config)
        assert "100 iterations" in rows[0]["data_set"]
        assert "512 molecules" in rows[3]["data_set"]

    def test_render_contains_sync_column(self):
        text = render_table1(["water"])
        assert "locks and barriers" in text
        assert "Program" in text


class TestTable2:
    def test_render_panel(self, cmp_sor):
        text = render_table2_panel(cmp_sor)
        assert "None" in text and "ML" in text and "CCL" in text
        assert "Flushes" in text
        assert "% of ML's" in text


class TestFig4:
    def test_rows_schema(self, cmp_sor):
        rows = fig4_rows([cmp_sor])
        assert len(rows) == 3
        assert {r["protocol"] for r in rows} == {"none", "ml", "ccl"}
        none_row = next(r for r in rows if r["protocol"] == "none")
        assert none_row["normalized_time"] == 1.0

    def test_render(self, cmp_sor):
        text = render_fig4([cmp_sor])
        assert "Figure 4" in text
        assert "#" in text  # bars rendered


class TestFig5:
    def test_rows_schema(self, rec_sor):
        rows = fig5_rows([rec_sor])
        assert len(rows) == 3
        reexec = next(r for r in rows if r["scheme"] == "reexec")
        assert reexec["normalized_time"] == 1.0

    def test_render(self, rec_sor):
        text = render_fig5([rec_sor])
        assert "Figure 5" in text
        assert "Re-Execution" in text and "Our Recovery" in text


class TestCsv:
    def test_write_csv_roundtrip(self, cmp_sor, tmp_path):
        rows = fig4_rows([cmp_sor])
        path = tmp_path / "fig4.csv"
        write_csv(rows, str(path))
        text = path.read_text()
        assert text.splitlines()[0] == "app,protocol,normalized_time,exec_time_s"
        assert len(text.splitlines()) == 4

    def test_write_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], str(tmp_path / "x.csv"))


class TestSweep:
    def test_sweep_and_render(self):
        points = sweep(
            [("a", {"x": 1}), ("b", {"x": 2})],
            lambda label, params: {"metric": params["x"] * 2.0},
        )
        assert [p.metrics["metric"] for p in points] == [2.0, 4.0]
        text = render_sweep("demo", points)
        assert "demo" in text and "metric" in text and "a" in text
