"""Zone/replication chaos CLI plumbing: fail-fast validation, flag
parsing, and the ablation history append.

Every impossible flag combination must die with a one-line
``ConfigError`` *before* any simulation runs (the chaos command turns
it into exit code 2), and a valid zone config must come out labelled
and WAN-charged exactly as requested.
"""

import json
from types import SimpleNamespace

import pytest

from repro.errors import ConfigError
from repro.harness.ablations import append_ablation_history
from repro.harness.chaoscmd import _parse_zone_partition, _zone_config
from repro.harness.sweep import SweepPoint


def _args(**overrides):
    base = dict(
        nodes=8, zones=None, zone_wan=0.0, zone_kill=None,
        zone_partition=None, replication=1, protocols=["ccl"],
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestZonePartitionParsing:
    def test_none_passes_through(self):
        assert _parse_zone_partition(None) is None

    def test_pair_parses(self):
        assert _parse_zone_partition("0,1") == (0, 1)

    @pytest.mark.parametrize("bad", ["0", "0,1,2", "a,b", ""])
    def test_malformed_is_diagnosed(self, bad):
        with pytest.raises(ConfigError, match="two zone ids"):
            _parse_zone_partition(bad)


class TestZoneConfigFailFast:
    def test_plain_config_unchanged(self):
        config, partition = _zone_config(_args())
        assert config.zones is None and partition is None

    def test_zoned_config_labels_round_robin(self):
        config, _ = _zone_config(_args(zones=2, zone_wan=2e-4))
        assert sorted(set(config.zones)) == [0, 1]
        assert config.zone_wan_latency_s == 2e-4

    def test_zone_wan_without_zones_refused(self):
        with pytest.raises(ConfigError, match="needs --zones"):
            _zone_config(_args(zone_wan=1e-4))

    def test_unknown_kill_zone_refused(self):
        with pytest.raises(ConfigError, match="unknown zone 5"):
            _zone_config(_args(zones=2, zone_kill=5))

    def test_unknown_partition_zone_refused(self):
        with pytest.raises(ConfigError, match="unknown zone 3"):
            _zone_config(_args(zones=2, zone_partition="0,3"))

    def test_replication_exceeding_cluster_refused(self):
        with pytest.raises(ConfigError, match="exceeds the cluster"):
            _zone_config(_args(nodes=4, replication=5))

    def test_failover_without_replication_refused(self):
        with pytest.raises(ConfigError, match="--replication >= 2"):
            _zone_config(_args(protocols=["ccl", "failover"]))

    def test_failover_with_replication_accepted(self):
        config, _ = _zone_config(
            _args(protocols=["failover"], replication=2, zones=2)
        )
        assert config.num_nodes == 8

    def test_killing_the_only_zone_refused(self):
        with pytest.raises(ConfigError, match="at least one zone"):
            _zone_config(_args(zone_kill=0))


class TestAblationHistoryAppend:
    def test_appends_one_compact_entry(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        points = [
            SweepPoint("water", {}, {"oh_r2_pct": 4.4, "rec_r2_ms": 1.3}),
            SweepPoint("mg", {}, {"oh_r2_pct": 6.5, "rec_r2_ms": 1.2}),
        ]
        entry = append_ablation_history("replication", points, str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed == json.loads(json.dumps(entry))
        assert parsed["kind"] == "ablation"
        assert parsed["which"] == "replication"
        assert parsed["points"]["water"]["oh_r2_pct"] == 4.4
        assert parsed["git_rev"]

    def test_entries_accumulate(self, tmp_path):
        path = tmp_path / "history.jsonl"
        points = [SweepPoint("x", {}, {"m": 1.0})]
        append_ablation_history("replication", points, str(path))
        append_ablation_history("adaptive", points, str(path))
        kinds = [
            json.loads(line)["which"]
            for line in path.read_text().splitlines()
        ]
        assert kinds == ["replication", "adaptive"]

    def test_perf_gate_skips_ablation_entries(self, tmp_path):
        """The perf gate baselines each family against the most recent
        entry carrying it; an ablation entry carries none."""
        import sys
        sys.path.insert(0, "benchmarks")
        try:
            from check_perf_gate import load_baseline
        except ImportError:
            pytest.skip("check_perf_gate helpers not importable")
        finally:
            sys.path.pop(0)
        perf_entry = {
            "schema": 1, "git_rev": "abc",
            "kernels_ns_per_op": {"k": 10.0}, "sim_events_per_sec": 1e6,
        }
        with open(tmp_path / "history.jsonl", "w") as fh:
            fh.write(json.dumps(perf_entry) + "\n")
        append_ablation_history(
            "replication", [SweepPoint("x", {}, {"m": 1.0})],
            str(tmp_path / "history.jsonl"),
        )
        kernels, sim = load_baseline(str(tmp_path / "history.jsonl"))
        assert kernels["kernels_ns_per_op"] == {"k": 10.0}
        assert sim["sim_events_per_sec"] == 1e6


class TestReplicationAblationRegistry:
    def test_replication_sweep_is_registered(self):
        from repro.config import ClusterConfig
        from repro.harness.ablations import ABLATIONS

        title, variants_fn, measure = ABLATIONS["replication"]
        assert "replication" in title
        variants = variants_fn(ClusterConfig.ultra5(num_nodes=4))
        labels = [label for label, _params in variants]
        assert labels == ["fft3d", "mg", "shallow", "water"]
        assert callable(measure)
