"""Unit tests for the shared address space and node-local memory."""

import numpy as np
import pytest

from repro.errors import MemoryLayoutError
from repro.memory import (
    LocalMemory,
    SharedAddressSpace,
    SharedArray,
    pages_in_byte_range,
)

PAGE = 128


class TestSharedAddressSpace:
    def test_page_aligned_allocations(self):
        sp = SharedAddressSpace(PAGE)
        a = sp.allocate("a", (10,), np.float64)  # 80 bytes
        b = sp.allocate("b", (10,), np.float64)
        assert a.offset == 0
        assert b.offset == PAGE  # aligned up past a
        assert sp.npages == 2

    def test_unaligned_allocation_packs_tightly(self):
        sp = SharedAddressSpace(PAGE)
        a = sp.allocate("a", (10,), np.float64)
        b = sp.allocate("b", (10,), np.float64, page_align=False)
        assert b.offset == a.end
        assert sp.npages == 2  # 160 bytes -> 2 pages

    def test_duplicate_name_rejected(self):
        sp = SharedAddressSpace(PAGE)
        sp.allocate("a", (1,), np.int32)
        with pytest.raises(MemoryLayoutError):
            sp.allocate("a", (1,), np.int32)

    def test_scalar_shape_accepted(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("x", 5, np.int32)
        assert v.shape == (5,)
        assert v.nbytes == 20

    def test_empty_allocation_rejected(self):
        sp = SharedAddressSpace(PAGE)
        with pytest.raises(MemoryLayoutError):
            sp.allocate("z", (0,), np.int32)

    def test_allocate_after_seal_rejected(self):
        sp = SharedAddressSpace(PAGE)
        sp.allocate("a", (1,), np.int8)
        sp.seal()
        with pytest.raises(MemoryLayoutError):
            sp.allocate("b", (1,), np.int8)

    def test_var_lookup(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (3, 3), np.float32)
        assert sp.var("a") is v
        with pytest.raises(MemoryLayoutError):
            sp.var("missing")

    def test_init_shape_checked(self):
        sp = SharedAddressSpace(PAGE)
        with pytest.raises(MemoryLayoutError):
            sp.allocate("a", (4,), np.float64, init=np.zeros(5))

    def test_byte_range_of_elements(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (100,), np.float64)
        lo, hi = v.byte_range(2, 5)
        assert (lo, hi) == (16, 40)
        with pytest.raises(MemoryLayoutError):
            v.byte_range(5, 200)

    def test_pages_of_variable(self):
        sp = SharedAddressSpace(PAGE)
        sp.allocate("pad", (PAGE,), np.uint8)
        small = sp.allocate("a", (PAGE // 2,), np.uint8)  # fits in page 1
        big = sp.allocate("b", (PAGE + 1,), np.uint8)  # spans pages 2..3
        assert list(sp.pages_of(small)) == [1]
        assert list(sp.pages_of(big)) == [2, 3]


def test_pages_in_byte_range():
    assert list(pages_in_byte_range(0, 1, PAGE)) == [0]
    assert list(pages_in_byte_range(0, PAGE, PAGE)) == [0]
    assert list(pages_in_byte_range(0, PAGE + 1, PAGE)) == [0, 1]
    assert list(pages_in_byte_range(PAGE - 1, PAGE + 1, PAGE)) == [0, 1]
    assert list(pages_in_byte_range(5, 5, PAGE)) == []


class TestLocalMemory:
    def test_initial_contents_replicated(self):
        sp = SharedAddressSpace(PAGE)
        init = np.arange(16, dtype=np.float64)
        sp.allocate("a", (16,), np.float64, init=init)
        m0, m1 = LocalMemory(sp), LocalMemory(sp)
        assert np.array_equal(m0.view(sp.var("a")), init)
        assert np.array_equal(m0.buffer, m1.buffer)

    def test_view_is_mutable_alias_of_pages(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (16,), np.float64)
        mem = LocalMemory(sp)
        arr = mem.view(v)
        arr[0] = 3.5
        page0 = mem.page_bytes(0)
        assert page0.view(np.float64)[0] == 3.5

    def test_page_bytes_bounds(self):
        sp = SharedAddressSpace(PAGE)
        sp.allocate("a", (1,), np.uint8)
        mem = LocalMemory(sp)
        with pytest.raises(MemoryLayoutError):
            mem.page_bytes(1)

    def test_snapshot_restore_roundtrip(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (8,), np.int64)
        mem = LocalMemory(sp)
        snap = mem.snapshot()
        mem.view(v)[:] = 42
        mem.restore(snap)
        assert np.all(mem.view(v) == 0)

    def test_restore_size_checked(self):
        sp = SharedAddressSpace(PAGE)
        sp.allocate("a", (8,), np.int64)
        mem = LocalMemory(sp)
        with pytest.raises(MemoryLayoutError):
            mem.restore(np.zeros(3, dtype=np.uint8))


class TestSharedArray:
    def test_pages_for_elements(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (64,), np.float64)  # 512 B = 4 pages
        mem = LocalMemory(sp)
        sa = SharedArray(mem, v)
        assert sa.flat_size == 64
        assert list(sa.pages_for_elements(0, 16)) == [0]
        assert list(sa.pages_for_elements(0, 17)) == [0, 1]
        assert list(sa.pages_for_elements(16, 32)) == [1]
        assert list(sa.pages_for_elements(0, 64)) == [0, 1, 2, 3]

    def test_array_mutations_visible_through_memory(self):
        sp = SharedAddressSpace(PAGE)
        v = sp.allocate("a", (4, 4), np.float32)
        mem = LocalMemory(sp)
        sa = SharedArray(mem, v)
        sa.array[2, 3] = 7.0
        assert mem.view(v)[2, 3] == 7.0
