"""Unit tests for the pooled page buffers."""

import numpy as np
import pytest

from repro.memory import BufferPool, PageTable


class TestBufferPool:
    def test_take_returns_fresh_buffer(self):
        pool = BufferPool(64)
        buf = pool.take()
        assert buf.dtype == np.uint8 and buf.shape == (64,)
        assert pool.allocations == 1 and pool.reuses == 0

    def test_give_then_take_reuses(self):
        pool = BufferPool(64)
        buf = pool.take()
        pool.give(buf)
        assert pool.free_count == 1
        again = pool.take()
        assert again is buf
        assert pool.reuses == 1

    def test_take_copy_copies_contents(self):
        pool = BufferPool(64)
        src = np.arange(64, dtype=np.uint8)
        buf = pool.take_copy(src)
        assert np.array_equal(buf, src)
        src[0] = 99
        assert buf[0] == 0

    def test_recycled_buffer_contents_are_overwritten_on_take_copy(self):
        pool = BufferPool(64)
        buf = pool.take()
        buf[:] = 0xAB
        pool.give(buf)
        out = pool.take_copy(np.zeros(64, dtype=np.uint8))
        assert out is buf
        assert not out.any()

    def test_wrong_size_or_dtype_not_pooled(self):
        pool = BufferPool(64)
        pool.give(np.zeros(32, dtype=np.uint8))
        pool.give(np.zeros(64, dtype=np.uint32))
        assert pool.free_count == 0

    def test_views_are_rejected_loudly(self):
        # a pooled view would let take_copy scribble over live memory
        pool = BufferPool(64)
        backing = np.zeros(128, dtype=np.uint8)
        with pytest.raises(ValueError, match="view"):
            pool.give(backing[:64])
        assert pool.free_count == 0

    def test_readonly_buffers_are_rejected_loudly(self):
        # pooling a read-only array defers the crash to an unrelated
        # take_copy call site; fail at the give() that caused it
        pool = BufferPool(64)
        buf = np.zeros(64, dtype=np.uint8)
        buf.flags.writeable = False
        with pytest.raises(ValueError, match="read-only"):
            pool.give(buf)
        assert pool.free_count == 0

    def test_take_copy_rejects_size_mismatch(self):
        # numpy would happily broadcast a scalar or raise a confusing
        # shape error deep inside copyto; the pool checks up front
        pool = BufferPool(64)
        with pytest.raises(ValueError, match="take_copy"):
            pool.take_copy(np.zeros(32, dtype=np.uint8))
        with pytest.raises(ValueError, match="take_copy"):
            pool.take_copy(np.zeros((8, 8), dtype=np.uint8))

    def test_free_list_is_bounded(self):
        pool = BufferPool(8, max_free=2)
        bufs = [pool.take() for _ in range(4)]
        for b in bufs:
            pool.give(b)
        assert pool.free_count == 2


class TestPageTablePooling:
    def make_table(self, pool):
        return PageTable(0, 4, [0, 1, 0, 1], pool=pool)

    def test_drop_twin_recycles_buffer(self):
        pool = BufferPool(16)
        pt = self.make_table(pool)
        pt.make_twin(1, np.arange(16, dtype=np.uint8))
        assert pool.allocations == 1
        pt.drop_twin(1)
        assert pool.free_count == 1
        # next twin on any page reuses the retired buffer
        pt.make_twin(3, np.zeros(16, dtype=np.uint8))
        assert pool.reuses == 1 and pool.allocations == 1

    def test_invalidate_recycles_twin(self):
        from repro.memory import PageState

        pool = BufferPool(16)
        pt = self.make_table(pool)
        pt.entry(1).state = PageState.DIRTY
        pt.make_twin(1, np.zeros(16, dtype=np.uint8))
        pt.invalidate(1)
        assert pt.entry(1).twin is None
        assert pool.free_count == 1

    def test_pooled_twin_still_copies_contents(self):
        pool = BufferPool(16)
        pt = self.make_table(pool)
        buf = np.arange(16, dtype=np.uint8)
        twin = pt.make_twin(1, buf)
        buf[0] = 99
        assert twin[0] == 0

    def test_unpooled_table_unaffected(self):
        pt = PageTable(0, 4, [0, 1, 0, 1])
        pt.make_twin(1, np.zeros(16, dtype=np.uint8))
        pt.drop_twin(1)
        assert pt.entry(1).twin is None
