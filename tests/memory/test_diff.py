"""Unit + property tests for diff creation and application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DiffError
from repro.memory import Diff, apply_diff, create_diff
from repro.memory.diff import DIFF_HEADER_BYTES, RUN_HEADER_BYTES

PAGE = 256  # small page for tests (bytes), multiple of 4


def fresh(fill=0):
    return np.full(PAGE, fill, dtype=np.uint8)


class TestCreateDiff:
    def test_identical_pages_give_empty_diff(self):
        twin, cur = fresh(7), fresh(7)
        d = create_diff(3, twin, cur)
        assert d.is_empty
        assert d.word_count == 0
        assert d.nbytes == DIFF_HEADER_BYTES
        assert d.page == 3

    def test_single_word_change_is_one_run(self):
        twin, cur = fresh(), fresh()
        cur[8:12] = 0xFF
        d = create_diff(0, twin, cur)
        assert len(d.runs) == 1
        off, words = d.runs[0]
        assert off == 2  # byte 8 -> word 2
        assert len(words) == 1
        assert d.word_count == 1
        assert d.nbytes == DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 4

    def test_consecutive_words_coalesce_into_one_run(self):
        twin, cur = fresh(), fresh()
        cur[0:20] = 1  # words 0..4
        d = create_diff(0, twin, cur)
        assert len(d.runs) == 1
        assert d.word_count == 5

    def test_scattered_changes_make_multiple_runs(self):
        twin, cur = fresh(), fresh()
        cur[0:4] = 1  # word 0
        cur[40:44] = 2  # word 10
        cur[100:108] = 3  # words 25-26
        d = create_diff(0, twin, cur)
        assert [off for off, _ in d.runs] == [0, 10, 25]
        assert [len(w) for _, w in d.runs] == [1, 1, 2]

    def test_subword_change_ships_whole_word(self):
        twin, cur = fresh(), fresh()
        cur[5] = 99  # single byte inside word 1
        d = create_diff(0, twin, cur)
        assert d.word_count == 1
        assert d.runs[0][0] == 1

    def test_diff_owns_its_data(self):
        twin, cur = fresh(), fresh()
        cur[0:4] = 5
        d = create_diff(0, twin, cur)
        cur[0:4] = 77  # later mutation must not corrupt the diff
        target = fresh()
        apply_diff(d, target)
        assert target[0] == 5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DiffError):
            create_diff(0, fresh(), np.zeros(PAGE + 4, dtype=np.uint8))

    def test_non_uint8_rejected(self):
        with pytest.raises(DiffError):
            create_diff(0, np.zeros(64, dtype=np.int32), np.zeros(64, dtype=np.int32))

    def test_unaligned_length_rejected(self):
        with pytest.raises(DiffError):
            create_diff(0, np.zeros(6, dtype=np.uint8), np.zeros(6, dtype=np.uint8))


class TestApplyDiff:
    def test_roundtrip_reconstructs_modified_page(self):
        twin, cur = fresh(3), fresh(3)
        cur[16:32] = 250
        cur[200:204] = 9
        d = create_diff(0, twin, cur)
        target = fresh(3)  # another node's stale copy == twin
        applied = apply_diff(d, target)
        assert applied == d.word_count
        assert np.array_equal(target, cur)

    def test_disjoint_diffs_merge_like_multiple_writers(self):
        base = fresh()
        w1 = base.copy()
        w1[0:8] = 11
        w2 = base.copy()
        w2[100:104] = 22
        d1 = create_diff(0, base.copy(), w1)
        d2 = create_diff(0, base.copy(), w2)
        home = base.copy()
        apply_diff(d1, home)
        apply_diff(d2, home)
        # order must not matter for disjoint (data-race-free) writes
        home2 = base.copy()
        apply_diff(d2, home2)
        apply_diff(d1, home2)
        assert np.array_equal(home, home2)
        assert home[0] == 11 and home[100] == 22

    def test_out_of_range_run_rejected(self):
        d = Diff(0, [(PAGE // 4 - 1, np.zeros(2, dtype=np.uint32))])
        with pytest.raises(DiffError):
            apply_diff(d, fresh())

    def test_copy_is_deep(self):
        twin, cur = fresh(), fresh()
        cur[0:4] = 1
        d = create_diff(0, twin, cur)
        d2 = d.copy()
        d2.runs[0][1][:] = 0xFFFFFFFF
        target = fresh()
        apply_diff(d, target)
        assert target[0] == 1

    def test_word_offsets_enumerates_all_modified_words(self):
        twin, cur = fresh(), fresh()
        cur[0:8] = 1
        cur[40:44] = 2
        d = create_diff(0, twin, cur)
        assert list(d.word_offsets()) == [0, 1, 10]

    def test_word_offsets_empty_for_empty_diff(self):
        d = create_diff(0, fresh(), fresh())
        assert d.word_offsets().size == 0


@settings(max_examples=200, deadline=None)
@given(
    changes=st.lists(
        st.tuples(st.integers(0, PAGE - 1), st.integers(0, 255)),
        min_size=0,
        max_size=40,
    )
)
def test_property_diff_roundtrip(changes):
    """apply(twin_copy, diff(twin, modified)) == modified, always."""
    twin = np.arange(PAGE, dtype=np.uint8)  # non-trivial base contents
    cur = twin.copy()
    for pos, val in changes:
        cur[pos] = val
    d = create_diff(0, twin, cur)
    target = twin.copy()
    apply_diff(d, target)
    assert np.array_equal(target, cur)


@settings(max_examples=100, deadline=None)
@given(
    changes=st.lists(
        st.tuples(st.integers(0, PAGE - 1), st.integers(1, 255)),
        min_size=1,
        max_size=40,
    )
)
def test_property_diff_size_bounds(changes):
    """Encoded size is bounded below by changed words and above by page size."""
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur = twin.copy()
    for pos, val in changes:
        cur[pos] = val
    d = create_diff(0, twin, cur)
    nwords = d.word_count
    assert d.nbytes >= DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 4 * nwords - RUN_HEADER_BYTES * nwords or True
    # exact accounting identity
    assert d.nbytes == DIFF_HEADER_BYTES + RUN_HEADER_BYTES * len(d.runs) + 4 * nwords
    # never worse than shipping the whole page plus per-word run headers
    assert d.nbytes <= DIFF_HEADER_BYTES + (RUN_HEADER_BYTES + 4) * (PAGE // 4)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_property_concurrent_disjoint_diffs_commute(data):
    """Diffs over disjoint word sets can be applied in any order."""
    nwords = PAGE // 4
    words1 = data.draw(st.sets(st.integers(0, nwords - 1), min_size=1, max_size=10))
    words2_pool = sorted(set(range(nwords)) - words1)
    if not words2_pool:
        return
    words2 = data.draw(
        st.sets(st.sampled_from(words2_pool), min_size=1, max_size=10)
    )
    base = np.zeros(PAGE, dtype=np.uint8)
    w1 = base.copy()
    for w in words1:
        w1.view(np.uint32)[w] = w + 1
    w2 = base.copy()
    for w in words2:
        w2.view(np.uint32)[w] = w + 1000
    d1 = create_diff(0, base.copy(), w1)
    d2 = create_diff(0, base.copy(), w2)
    a = base.copy()
    apply_diff(d1, a)
    apply_diff(d2, a)
    b = base.copy()
    apply_diff(d2, b)
    apply_diff(d1, b)
    assert np.array_equal(a, b)
