"""Unit + property tests for diff merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DiffError
from repro.memory import apply_diff, create_diff
from repro.memory.diff import merge_diffs

PAGE = 128


def page(fill=0):
    return np.full(PAGE, fill, dtype=np.uint8)


class TestMergeDiffs:
    def test_page_mismatch_rejected(self):
        a = create_diff(0, page(), page(1))
        b = create_diff(1, page(), page(1))
        with pytest.raises(DiffError):
            merge_diffs(a, b)

    def test_disjoint_merge_contains_both(self):
        base = page()
        w1 = base.copy()
        w1[0:4] = 1
        w2 = base.copy()
        w2[64:68] = 2
        m = merge_diffs(create_diff(0, base.copy(), w1),
                        create_diff(0, base.copy(), w2))
        target = base.copy()
        apply_diff(m, target)
        assert target[0] == 1 and target[64] == 2

    def test_second_wins_on_overlap(self):
        base = page()
        w1 = base.copy()
        w1[0:4] = 1
        w2 = base.copy()
        w2[0:4] = 9
        m = merge_diffs(create_diff(0, base.copy(), w1),
                        create_diff(0, base.copy(), w2))
        target = base.copy()
        apply_diff(m, target)
        assert target[0] == 9

    def test_merge_with_empty(self):
        base = page()
        w = base.copy()
        w[8:12] = 3
        d = create_diff(0, base.copy(), w)
        empty = create_diff(0, base.copy(), base.copy())
        m = merge_diffs(empty, d)
        target = base.copy()
        apply_diff(m, target)
        assert np.array_equal(target, w)
        assert merge_diffs(empty, empty).is_empty


@settings(max_examples=100, deadline=None)
@given(
    first=st.lists(st.tuples(st.integers(0, PAGE - 1), st.integers(1, 255)),
                   max_size=20),
    second=st.lists(st.tuples(st.integers(0, PAGE - 1), st.integers(1, 255)),
                    max_size=20),
)
def test_property_merge_equals_sequential_application(first, second):
    """merge(d1, d2) applied once == d1 then d2 applied in order."""
    base = np.arange(PAGE, dtype=np.uint8)
    m1 = base.copy()
    for pos, val in first:
        m1[pos] = val
    d1 = create_diff(0, base.copy(), m1)
    m2 = base.copy()
    for pos, val in second:
        m2[pos] = val
    d2 = create_diff(0, base.copy(), m2)

    via_merge = base.copy()
    apply_diff(merge_diffs(d1, d2), via_merge)
    via_sequence = base.copy()
    apply_diff(d1, via_sequence)
    apply_diff(d2, via_sequence)
    assert np.array_equal(via_merge, via_sequence)
