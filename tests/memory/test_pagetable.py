"""Unit tests for page states and page tables."""

import numpy as np
import pytest

from repro.errors import PageError
from repro.memory import PageState, PageTable


def make_table(node=0, npages=4, homes=None):
    homes = homes if homes is not None else [0, 1, 0, 1]
    return PageTable(node, npages, homes)


class TestPageState:
    def test_readable(self):
        assert not PageState.INVALID.readable
        assert PageState.CLEAN.readable
        assert PageState.DIRTY.readable

    def test_writable(self):
        assert not PageState.INVALID.writable
        assert not PageState.CLEAN.writable
        assert PageState.DIRTY.writable


class TestPageTable:
    def test_initial_state_invalid_with_homes(self):
        pt = make_table()
        for p in range(4):
            assert pt.entry(p).state is PageState.INVALID
            assert pt.entry(p).twin is None
        assert pt.is_home(0) and pt.is_home(2)
        assert not pt.is_home(1)
        assert list(pt.home_pages()) == [0, 2]

    def test_home_count_mismatch_rejected(self):
        with pytest.raises(PageError):
            PageTable(0, 4, [0, 1])

    def test_entry_out_of_range(self):
        pt = make_table()
        with pytest.raises(PageError):
            pt.entry(4)
        with pytest.raises(PageError):
            pt.entry(-1)

    def test_invalidate_remote_copy(self):
        pt = make_table()
        pt.entry(1).state = PageState.CLEAN
        assert pt.invalidate(1) is True
        assert pt.entry(1).state is PageState.INVALID
        assert pt.invalidations == 1

    def test_invalidate_already_invalid_not_counted(self):
        pt = make_table()
        assert pt.invalidate(1) is False
        assert pt.invalidations == 0

    def test_invalidate_drops_twin(self):
        pt = make_table()
        pt.entry(1).state = PageState.DIRTY
        pt.make_twin(1, np.zeros(16, dtype=np.uint8))
        pt.invalidate(1)
        assert pt.entry(1).twin is None

    def test_invalidate_home_page_is_protocol_bug(self):
        pt = make_table()
        with pytest.raises(PageError):
            pt.invalidate(0)

    def test_make_twin_copies_contents(self):
        pt = make_table()
        buf = np.arange(16, dtype=np.uint8)
        twin = pt.make_twin(1, buf)
        buf[0] = 99
        assert twin[0] == 0
        assert pt.twin_creations == 1

    def test_double_twin_rejected(self):
        pt = make_table()
        pt.make_twin(1, np.zeros(16, dtype=np.uint8))
        with pytest.raises(PageError):
            pt.make_twin(1, np.zeros(16, dtype=np.uint8))

    def test_drop_twin(self):
        pt = make_table()
        pt.make_twin(1, np.zeros(16, dtype=np.uint8))
        pt.drop_twin(1)
        assert pt.entry(1).twin is None

    def test_dirty_set_lifecycle(self):
        pt = make_table()
        pt.mark_dirty(3)
        pt.mark_dirty(1)
        pt.mark_dirty(3)  # idempotent
        assert pt.take_dirty() == [1, 3]
        assert pt.take_dirty() == []
