"""Vectorized diff kernels vs. the preserved reference implementations.

The pre-vectorization kernels live on in :mod:`repro.memory.reference`
as oracles: every property here generates arbitrary twin/current pairs
and asserts the production kernels produce *byte-identical* diffs,
merges, applications, and encodings.  Plus the regression test for the
old ``merge_diffs`` worst case: merging two dense full-page diffs used
to rebuild a per-word Python dict (~1k dict stores per page).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import create_diff, decode_diff, encode_diff, merge_diffs
from repro.memory.diff import DIFF_HEADER_BYTES, RUN_HEADER_BYTES, apply_diff
from repro.memory.reference import (
    reference_apply_diff,
    reference_create_diff,
    reference_encode_diff,
    reference_merge_diffs,
)

PAGE = 256  # bytes, multiple of 4


def modified(base, changes):
    cur = base.copy()
    for pos, val in changes:
        cur[pos] = val
    return cur


changes_st = st.lists(
    st.tuples(st.integers(0, PAGE - 1), st.integers(0, 255)),
    min_size=0,
    max_size=48,
)


def assert_same_diff(d, r):
    assert d.page == r.page
    assert np.array_equal(d.offsets, r.offsets)
    assert np.array_equal(d.words, r.words)
    assert d.nbytes == r.nbytes
    assert d.run_count == r.run_count


@settings(max_examples=200, deadline=None)
@given(changes=changes_st)
def test_property_create_matches_reference(changes):
    base = np.arange(PAGE, dtype=np.uint8)
    cur = modified(base, changes)
    assert_same_diff(create_diff(5, base, cur), reference_create_diff(5, base, cur))


@settings(max_examples=200, deadline=None)
@given(first=changes_st, second=changes_st)
def test_property_merge_matches_reference(first, second):
    base = np.arange(PAGE, dtype=np.uint8)
    d1 = create_diff(0, base, modified(base, first))
    d2 = create_diff(0, base, modified(base, second))
    assert_same_diff(merge_diffs(d1, d2), reference_merge_diffs(d1, d2))


@settings(max_examples=200, deadline=None)
@given(changes=changes_st)
def test_property_apply_matches_reference(changes):
    base = np.arange(PAGE, dtype=np.uint8)
    d = create_diff(0, base, modified(base, changes))
    t_new, t_ref = base.copy(), base.copy()
    assert apply_diff(d, t_new) == reference_apply_diff(d, t_ref)
    assert np.array_equal(t_new, t_ref)


@settings(max_examples=200, deadline=None)
@given(changes=changes_st)
def test_property_encode_matches_reference_and_roundtrips(changes):
    base = np.arange(PAGE, dtype=np.uint8)
    d = create_diff(9, base, modified(base, changes))
    packed = encode_diff(d)
    assert packed.dtype == np.uint8
    assert packed.size == d.nbytes  # wire bytes == the modelled size
    assert np.array_equal(packed, reference_encode_diff(d))
    rt = decode_diff(packed)
    assert_same_diff(rt, d)


def test_merge_two_dense_fullpage_diffs_regression():
    """The old worst case: both inputs touch every word of the page.

    The per-word dict rebuild made this merge ~O(words) Python-level
    operations; the run-algebra version must still produce exactly one
    run covering the page, with the second diff winning everywhere.
    """
    nwords = PAGE // 4
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur1 = np.empty(PAGE, dtype=np.uint8)
    cur1.view(np.uint32)[:] = np.arange(nwords, dtype=np.uint32) + 1
    cur2 = np.empty(PAGE, dtype=np.uint8)
    cur2.view(np.uint32)[:] = np.arange(nwords, dtype=np.uint32) + 1_000_000

    d1 = create_diff(0, twin, cur1)
    d2 = create_diff(0, twin, cur2)
    assert d1.word_count == nwords and d2.word_count == nwords

    m = merge_diffs(d1, d2)
    assert_same_diff(m, reference_merge_diffs(d1, d2))
    # one dense run, no per-word fragmentation, second diff's words
    assert m.run_count == 1
    assert m.word_count == nwords
    assert m.nbytes == DIFF_HEADER_BYTES + RUN_HEADER_BYTES + 4 * nwords
    target = twin.copy()
    apply_diff(m, target)
    assert np.array_equal(target, cur2)


def test_merge_result_independent_of_inputs():
    """Mutating a merge input afterwards must not corrupt the merge."""
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur = twin.copy()
    cur[0:4] = 7
    d1 = create_diff(0, twin, cur)
    d2 = create_diff(0, twin, twin.copy())
    m = merge_diffs(d1, d2)
    d1.words[:] = 0xFFFFFFFF
    target = twin.copy()
    apply_diff(m, target)
    assert target[0] == 7


def test_decode_words_are_zero_copy_view():
    """decode_diff reuses the buffer's storage instead of copying words."""
    twin = np.zeros(PAGE, dtype=np.uint8)
    cur = twin.copy()
    cur[0:8] = 3
    packed = encode_diff(create_diff(0, twin, cur))
    d = decode_diff(packed)
    assert d.words.base is not None  # a view into the packed buffer
    assert np.shares_memory(d.words, packed)
