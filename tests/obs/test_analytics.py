"""Columnar trace store: ingest, caching, and the built-in reports."""

import json
import time

import pytest

from repro.config import ClusterConfig
from repro.obs import analytics
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# synthetic traces with known answers
# ----------------------------------------------------------------------

def _synthetic_tracer() -> Tracer:
    t = Tracer(enabled=True)
    # two locks: lock 7 heavily contended, lock 1 uncontended
    t.record(0.0, 0, "lock_grant", {"lock": 7, "to": 0, "queued": False})
    t.record(0.1, 0, "lock_grant", {"lock": 7, "to": 1, "queued": True})
    t.record(0.2, 0, "lock_grant", {"lock": 7, "to": 2, "queued": True})
    t.record(0.0, 1, "lock_grant", {"lock": 1, "to": 1, "queued": False})
    sid = t.begin(0.0, 1, "lock_wait", "wait", detail={"lock": 7})
    t.end(sid, 0.1)
    sid = t.begin(0.0, 2, "lock_wait", "wait", detail={"lock": 7})
    t.end(sid, 0.2)
    # page traffic: page 3 hot (2 fetches + diffs), page 9 cold
    t.record(0.3, 1, "page_fetch", {"page": 3, "home": 0, "crc": 1})
    t.record(0.4, 2, "page_fetch", {"page": 3, "home": 0, "crc": 1})
    t.record(0.5, 2, "page_fetch", {"page": 9, "home": 1, "crc": 2})
    t.record(0.6, 1, "diff_send",
             {"home": 0, "index": 1, "part": 0, "pages": [3, 3], "vt": [1, 0, 0]})
    t.record(0.7, 0, "diff_apply",
             {"writer": 1, "index": 1, "part": 0, "pages": [3, 3], "vt": [1, 0, 0]})
    # spans with nesting: parent 1.0s, child 0.4s -> parent self 0.6s
    p = t.begin(1.0, 0, "outer", "cpu")
    c = t.begin(1.2, 0, "inner", "disk")
    t.end(c, 1.6)
    t.end(p, 2.0)
    # message edges, incl. one undelivered
    e = t.edge_send(0.0, 0, 1, "diff", 100)
    t.edge_recv(e, 0.5)
    t.edge_send(0.1, 0, 1, "diff", 50)  # never delivered
    t.edge_send(0.2, 1, 0, "page_reply", 4096)
    t.edge_recv(2, 0.4)
    t.enabled = False
    return t


@pytest.fixture()
def ct():
    return analytics.ColumnarTrace.from_tracer(_synthetic_tracer())


def test_ingest_counts(ct):
    assert ct.source == "tracer"
    s = ct.summary()
    assert s["events"] == 9
    assert s["spans"] == 4
    assert s["edges"] == 3
    assert s["pagerows"] == 4  # 2 pages x (send + apply)


def test_report_locks_ranks_contended_lock_first(ct):
    doc = analytics.report_locks(ct)
    assert doc["locks"][0]["lock"] == 7
    top = doc["locks"][0]
    assert top["acquires"] == 3
    assert top["queued_waits"] == 2
    assert top["wait_total"] == pytest.approx(0.3)
    assert top["holder_chain"] == [0, 1, 2]
    locks = {r["lock"]: r for r in doc["locks"]}
    assert locks[1]["wait_total"] == 0.0


def test_report_pages_finds_hot_page_and_homes(ct):
    doc = analytics.report_pages(ct)
    assert doc["pages"][0]["page"] == 3
    hot = doc["pages"][0]
    assert hot["home"] == 0
    assert hot["fetches"] == 2
    assert hot["diff_sends"] == 2
    assert hot["diff_applies"] == 2
    # home 0 served 2 fetches + applied 2 diffs; home 1 served 1 fetch
    assert doc["home_load"] == {"0": 4, "1": 1}
    assert doc["home_imbalance"] == pytest.approx(4 / 2.5)


def test_report_phases_self_time_excludes_children(ct):
    doc = analytics.report_phases(ct)
    by_name = {r["name"]: r["self_time"] for r in doc["by_name"]}
    assert by_name["outer"] == pytest.approx(0.6)
    assert by_name["inner"] == pytest.approx(0.4)
    assert doc["per_node"]["0"]["cpu"] == pytest.approx(0.6)
    assert doc["per_node"]["0"]["disk"] == pytest.approx(0.4)


def test_report_flows_matrix(ct):
    doc = analytics.report_flows(ct)
    assert doc["num_messages"] == 3
    assert doc["undelivered"] == 1
    flows = {(r["src"], r["dst"], r["kind"]): r for r in doc["flows"]}
    diff = flows[(0, 1, "diff")]
    assert diff["count"] == 2
    assert diff["bytes"] == 150
    assert diff["mean_latency"] == pytest.approx(0.5)  # only the delivered one


def test_render_and_run_report_roundtrip(ct):
    for name in analytics.REPORTS:
        doc = analytics.run_report(ct, name)
        text = analytics.render_report(doc)
        assert isinstance(text, str) and text
    with pytest.raises(KeyError):
        analytics.run_report(ct, "nope")


# ----------------------------------------------------------------------
# JSONL ingest + columnar cache
# ----------------------------------------------------------------------

def _write_trace(tmp_path):
    tracer = _synthetic_tracer()
    path = tmp_path / "trace.jsonl"
    tracer.save(str(path))
    return path


def test_jsonl_roundtrip_matches_tracer_ingest(tmp_path, ct):
    path = _write_trace(tmp_path)
    ct2 = analytics.ColumnarTrace.from_jsonl(str(path))
    assert ct2.summary() == ct.summary()
    for name in analytics.REPORTS:
        assert analytics.run_report(ct2, name) == analytics.run_report(ct, name)


def test_cache_is_used_without_reparsing(tmp_path, monkeypatch):
    path = _write_trace(tmp_path)
    first = analytics.load_or_ingest(str(tmp_path))
    assert first.source == "jsonl"
    assert (tmp_path / analytics.CACHE_NPZ).exists()

    def boom(_path):
        raise AssertionError("cached load must not re-parse the JSONL")

    monkeypatch.setattr(analytics, "_parse_jsonl", boom)
    second = analytics.load_or_ingest(str(tmp_path))
    assert second.source == "cache"
    assert second.summary() == first.summary()
    for name in analytics.REPORTS:
        assert (analytics.run_report(second, name)
                == analytics.run_report(first, name))


def test_cache_invalidated_when_trace_changes(tmp_path):
    path = _write_trace(tmp_path)
    analytics.load_or_ingest(str(tmp_path))
    # append one more event; size changes -> signature mismatch
    with open(path, "a") as fh:
        fh.write(json.dumps({"t": 9.9, "n": 0, "e": "fault", "d": 3}) + "\n")
    again = analytics.load_or_ingest(str(tmp_path))
    assert again.source == "jsonl"
    assert again.num_events == 10


def test_cache_schema_bump_invalidates(tmp_path, monkeypatch):
    _write_trace(tmp_path)
    analytics.load_or_ingest(str(tmp_path))
    monkeypatch.setattr(analytics, "COLUMNS_SCHEMA", 999)
    again = analytics.load_or_ingest(str(tmp_path))
    assert again.source == "jsonl"


def test_ingest_100k_events_under_one_second(tmp_path):
    """Acceptance bound: >=100k-record trace ingests in <1s."""
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as fh:
        for i in range(100_000):
            fh.write('{"t":%f,"n":%d,"e":"page_fetch","d":{"page":%d,"home":%d}}\n'
                     % (i * 1e-6, i % 8, i % 512, i % 8))
    t0 = time.perf_counter()
    ct = analytics.ColumnarTrace.from_jsonl(str(path))
    elapsed = time.perf_counter() - t0
    assert ct.num_events == 100_000
    assert elapsed < 1.0, f"ingest took {elapsed:.2f}s for 100k events"
    # and aggregation over the columns is effectively instant
    t0 = time.perf_counter()
    doc = analytics.report_pages(ct)
    assert time.perf_counter() - t0 < 0.2
    assert doc["num_pages"] == 512


# ----------------------------------------------------------------------
# against a real traced run
# ----------------------------------------------------------------------

def test_reports_on_real_run(tmp_path):
    from repro.analysis.sanitize import traced
    from repro.harness.runner import run_application

    with traced():
        _result, system = run_application(
            "water", "ccl", ClusterConfig.ultra5(num_nodes=4), "test")
    system.tracer.save(str(tmp_path / "trace.jsonl"))
    ct = analytics.load_or_ingest(str(tmp_path))
    assert ct.num_spans > 0 and ct.num_edges > 0
    locks = analytics.report_locks(ct)
    assert locks["locks"], "water takes per-block locks; report must see them"
    assert locks["locks"][0]["holder_chain"]
    pages = analytics.report_pages(ct)
    assert pages["pages"] and pages["home_load"]
    phases = analytics.report_phases(ct)
    assert set(phases["per_node"]) == {"0", "1", "2", "3"}
    flows = analytics.report_flows(ct)
    assert flows["undelivered"] == 0
    assert flows["total_bytes"] > 0
