"""Run-artifact bundles: manifest round-trip and bundle comparison."""

import json

from repro.obs.artifacts import (
    compare_bundles,
    config_dict,
    git_rev,
    load_bundle,
    new_run_id,
    render_compare,
    write_bundle,
)
from repro.sim.trace import Tracer


def _manifest(total_time: float = 1.5) -> dict:
    return {
        "command": "table2",
        "config": {"num_nodes": 4, "page_size": 4096},
        "results": [
            {"app": "sor", "protocol": "ccl", "total_time": total_time,
             "network_bytes": 1000},
        ],
    }


class TestBundleIO:
    def test_write_then_load_round_trips(self, tmp_path):
        bundle = write_bundle(str(tmp_path), _manifest())
        manifest = load_bundle(str(bundle))
        assert manifest["command"] == "table2"
        assert manifest["run_id"] == bundle.name
        assert "created" in manifest and "git_rev" in manifest

    def test_load_accepts_manifest_path_too(self, tmp_path):
        bundle = write_bundle(str(tmp_path), _manifest())
        direct = load_bundle(str(bundle / "manifest.json"))
        assert direct == load_bundle(str(bundle))

    def test_trace_is_saved_alongside(self, tmp_path):
        t = Tracer(enabled=True)
        sid = t.begin(0.0, 0, "compute", "cpu")
        t.end(sid, 1.0)
        bundle = write_bundle(str(tmp_path), _manifest(), tracer=t)
        manifest = load_bundle(str(bundle))
        assert manifest["trace_file"] == "trace.jsonl"
        back = Tracer.load(str(bundle / "trace.jsonl"))
        assert back.spans == t.spans

    def test_empty_tracer_writes_no_trace_file(self, tmp_path):
        bundle = write_bundle(str(tmp_path), _manifest(),
                              tracer=Tracer(enabled=True))
        assert not (bundle / "trace.jsonl").exists()
        assert "trace_file" not in load_bundle(str(bundle))

    def test_timeline_is_saved_when_given(self, tmp_path):
        doc = {"traceEvents": []}
        bundle = write_bundle(str(tmp_path), _manifest(), timeline=doc)
        assert json.loads((bundle / "timeline.json").read_text()) == doc

    def test_run_ids_never_collide(self, tmp_path):
        a = write_bundle(str(tmp_path), _manifest())
        b = write_bundle(str(tmp_path), _manifest())
        assert a != b

    def test_new_run_id_is_sortable_prefix(self, tmp_path):
        rid = new_run_id(str(tmp_path))
        assert rid.startswith("run-")

    def test_git_rev_inside_this_repo(self):
        rev = git_rev()
        assert rev == "unknown" or (4 <= len(rev) <= 40)

    def test_config_dict_captures_shape(self):
        from repro.config import ClusterConfig

        doc = config_dict(ClusterConfig.ultra5(num_nodes=4))
        assert doc["num_nodes"] == 4 and "repr" in doc


class TestCompare:
    def test_identical_manifests_report_no_differences(self, tmp_path):
        a = load_bundle(str(write_bundle(str(tmp_path), _manifest())))
        b = load_bundle(str(write_bundle(str(tmp_path), _manifest())))
        cmp = compare_bundles(a, b)
        assert all(row.get("delta") == 0.0 for row in cmp["rows"])
        assert "no differences" in render_compare(cmp)

    def test_changed_metric_shows_delta_and_ratio(self, tmp_path):
        a = load_bundle(str(write_bundle(str(tmp_path), _manifest(1.0))))
        b = load_bundle(str(write_bundle(str(tmp_path), _manifest(1.5))))
        cmp = compare_bundles(a, b)
        row = next(r for r in cmp["rows"] if "total_time" in r["key"])
        assert "sor/ccl" in row["key"]  # keyed by app/protocol, not index
        assert row["delta"] == 0.5 and row["ratio"] == 1.5
        assert "total_time" in render_compare(cmp)

    def test_metric_present_on_one_side_only(self):
        a = dict(_manifest(), metrics={"x": 1})
        b = _manifest()
        cmp = compare_bundles(a, b)
        row = next(r for r in cmp["rows"] if r["key"] == "metrics.x")
        assert row["a"] == 1.0 and row["b"] is None and "delta" not in row
