"""Tracing off must not perturb the simulation: pinned golden outputs.

``golden_sor_test4.json`` was captured with tracing disabled
(sor @ test scale, 4 nodes, protocols none/ml/ccl; log volumes use the
framed on-disk encoding of ``repro.core.logformat``).  Every simulated
quantity -- counters, time buckets, network traffic, log volume, total
time -- and the rendered Table 2 panel must stay bit-identical with
tracing disabled (the default).  This is what lets the span
instrumentation live inside the protocol hot paths: when ``Tracer.
enabled`` is False the guards reduce every call to a no-op.
"""

import json
from pathlib import Path

import pytest

from repro.config import ClusterConfig
from repro.harness.runner import logging_comparison, run_application
from repro.harness.tables import render_table2_panel

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_sor_test4.json").read_text()
)


def _summary(result):
    return json.loads(json.dumps({
        "agg_counters": dict(result.aggregate.counters),
        "agg_time": result.aggregate.time.as_dict(),
        "network_bytes": result.network_bytes,
        "network_msgs": result.network_msgs,
        "num_flushes": result.num_flushes,
        "total_log_bytes": result.total_log_bytes,
        "total_time": result.total_time,
    }))


@pytest.mark.parametrize("protocol", ["none", "ml", "ccl"])
def test_untraced_run_matches_pre_telemetry_golden(protocol):
    config = ClusterConfig.ultra5(num_nodes=4)
    result, system = run_application("sor", protocol, config, "test")
    assert not system.tracer.enabled
    assert len(system.tracer.spans) == 0 and len(system.tracer.edges) == 0
    assert _summary(result) == GOLDEN[protocol]


def test_table2_panel_renders_identically():
    config = ClusterConfig.ultra5(num_nodes=4)
    cmp = logging_comparison("sor", config, "test")
    assert render_table2_panel(cmp) == GOLDEN["table2_panel"]


def test_traced_run_does_not_change_simulated_results():
    from repro.analysis.sanitize import traced

    config = ClusterConfig.ultra5(num_nodes=4)
    with traced():
        result, system = run_application("sor", "ccl", config, "test")
    assert system.tracer.enabled
    assert len(system.tracer.spans) > 0
    # observation must be free in virtual time: same golden numbers
    assert _summary(result) == GOLDEN["ccl"]
