"""The console layer: quiet/JSON modes and the process singleton."""

import json

from repro.obs.console import Console, configure, get_console


class TestTextMode:
    def test_result_and_info_print(self, capsys):
        con = Console()
        con.result("table")
        con.info("progress")
        assert capsys.readouterr().out == "table\nprogress\n"

    def test_error_goes_to_stderr(self, capsys):
        Console().error("boom")
        captured = capsys.readouterr()
        assert captured.err == "boom\n" and captured.out == ""

    def test_finish_is_a_noop(self, capsys):
        con = Console()
        con.emit("key", {"x": 1})
        con.finish()
        assert capsys.readouterr().out == ""


class TestQuiet:
    def test_info_suppressed_result_kept(self, capsys):
        con = Console(quiet=True)
        con.result("table")
        con.info("progress")
        assert capsys.readouterr().out == "table\n"


class TestJsonMode:
    def test_one_document_with_buffered_output(self, capsys):
        con = Console(json_mode=True)
        con.result("line one")
        con.info("dropped")
        con.emit("metrics", {"n": 2})
        con.finish()
        doc = json.loads(capsys.readouterr().out)
        assert doc == {"metrics": {"n": 2}, "output": ["line one"]}

    def test_finish_resets_state(self, capsys):
        con = Console(json_mode=True)
        con.result("a")
        con.finish()
        capsys.readouterr()
        con.finish()
        assert json.loads(capsys.readouterr().out) == {"output": []}


class TestSingleton:
    def test_configure_mutates_the_shared_console(self):
        con = configure(quiet=True)
        try:
            assert get_console() is con and get_console().quiet
        finally:
            configure()  # restore defaults for other tests
        assert not get_console().quiet
