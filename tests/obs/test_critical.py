"""Critical-path extraction and the flush/communication overlap metric."""

import pytest

from repro.config import ClusterConfig
from repro.obs.critical import (
    critical_path,
    flush_overlap,
    render_overlap,
    render_path,
    summarize_path,
)
from repro.sim.trace import Tracer


def _cross_node_tracer() -> Tracer:
    """Node 1 computes until t=2, sends a grant that node 0 waits on."""
    t = Tracer(enabled=True)
    c0 = t.begin(0.0, 0, "compute", "cpu")
    t.end(c0, 1.0)
    c1 = t.begin(0.0, 1, "compute", "cpu")
    t.end(c1, 2.0)
    eid = t.edge_send(2.0, 1, 0, "lock_grant", 64)
    t.edge_recv(eid, 3.0)
    w = t.begin(1.0, 0, "lock_wait", "wait", detail={"eid": eid})
    t.end(w, 3.0)
    return t


class TestCriticalPath:
    def test_walk_jumps_through_the_message_edge(self):
        path = critical_path(_cross_node_tracer())
        assert [(s.node, s.cat) for s in path] == [
            (1, "cpu"),   # the sender's compute bounds the run
            (1, "net"),   # the grant's flight time
        ]
        assert path[0].duration == pytest.approx(2.0)
        assert path[-1].t1 == pytest.approx(3.0)

    def test_durations_span_the_wall_time(self):
        path = critical_path(_cross_node_tracer())
        assert sum(s.duration for s in path) == pytest.approx(3.0)
        assert path[-1].t1 - path[0].t0 == pytest.approx(3.0)

    def test_wait_without_edge_is_attributed_to_the_wait(self):
        t = Tracer(enabled=True)
        w = t.begin(0.0, 0, "barrier_wait", "wait")
        t.end(w, 1.0)
        path = critical_path(t)
        assert [(s.name, s.cat) for s in path] == [("barrier_wait", "wait")]

    def test_empty_tracer_yields_empty_path(self):
        assert critical_path(Tracer(enabled=True)) == []

    def test_summary_and_render(self):
        path = critical_path(_cross_node_tracer())
        by_cat = summarize_path(path)
        assert by_cat["cpu"] == pytest.approx(2.0)
        assert by_cat["net"] == pytest.approx(1.0)
        text = render_path(path)
        assert "critical path: 2 segments" in text
        assert "lock_grant" in text


class TestFlushOverlap:
    def test_async_flush_inside_wait_is_fully_hidden(self):
        t = Tracer(enabled=True)
        w = t.begin(1.0, 0, "diff_wait", "wait")
        f = t.begin(1.5, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "async"})
        t.end(f, 2.5)
        t.end(w, 3.0)
        report = flush_overlap(t)
        assert report.total_flush_s == pytest.approx(1.0)
        assert report.hidden_s == pytest.approx(1.0)
        assert report.overlap_fraction == pytest.approx(1.0)

    def test_partial_overlap_counts_the_intersection(self):
        t = Tracer(enabled=True)
        w = t.begin(0.0, 0, "diff_wait", "wait")
        t.end(w, 1.0)
        f = t.begin(0.5, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "async"})
        t.end(f, 2.0)  # half in the wait, half exposed
        report = flush_overlap(t)
        assert report.hidden_s == pytest.approx(0.5)
        assert report.overlap_fraction == pytest.approx(0.5 / 1.5)

    def test_sync_flush_never_hidden(self):
        t = Tracer(enabled=True)
        w = t.begin(0.0, 0, "lock_wait", "wait")
        t.end(w, 2.0)
        f = t.begin(0.5, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "sync"})
        t.end(f, 1.5)
        report = flush_overlap(t)
        assert report.hidden_s == 0.0
        assert report.sync_flush_s == pytest.approx(1.0)
        assert report.overlap_fraction == 0.0

    def test_other_nodes_waits_do_not_hide_a_flush(self):
        t = Tracer(enabled=True)
        w = t.begin(0.0, 1, "diff_wait", "wait")  # node 1 waits
        t.end(w, 2.0)
        f = t.begin(0.5, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "async"})  # node 0 flushes
        t.end(f, 1.5)
        assert flush_overlap(t).hidden_s == 0.0

    def test_render_reports_fraction_and_per_node(self):
        t = Tracer(enabled=True)
        w = t.begin(0.0, 0, "diff_wait", "wait")
        f = t.begin(0.0, 0, "log_flush", "disk", strand="disk",
                    detail={"mode": "async"})
        t.end(f, 1.0)
        t.end(w, 1.0)
        text = render_overlap(flush_overlap(t), "ccl")
        assert "[ccl]" in text and "overlap fraction 1.000" in text
        assert "node 0:" in text


class TestOnRealRuns:
    """The paper's claim, measured: CCL hides flushes, ML cannot."""

    @staticmethod
    def _overlap(protocol: str):
        from repro.analysis.sanitize import traced
        from repro.harness.runner import run_application

        config = ClusterConfig.ultra5(num_nodes=4)
        with traced():
            result, system = run_application("sor", protocol, config, "test")
        return result, system.tracer

    def test_ccl_overlap_exceeds_ml_baseline(self):
        _, ccl_tracer = self._overlap("ccl")
        _, ml_tracer = self._overlap("ml")
        ccl = flush_overlap(ccl_tracer)
        ml = flush_overlap(ml_tracer)
        assert ccl.total_flush_s > 0 and ml.total_flush_s > 0
        assert ml.overlap_fraction == 0.0  # sync flushes, by definition
        assert ccl.overlap_fraction > 0.5
        assert ccl.overlap_fraction > ml.overlap_fraction

    def test_critical_path_spans_the_run(self):
        result, tracer = self._overlap("ccl")
        path = critical_path(tracer)
        assert path, "traced run produced no critical path"
        assert path[-1].t1 == pytest.approx(result.total_time)
        assert sum(s.duration for s in path) == pytest.approx(
            result.total_time, rel=1e-9
        )
