"""``repro explain``: attribution of run deltas to components.

The pinned acceptance test injects a deliberate slowdown (a 50x slower
application flop rate, i.e. a planted compute regression) and requires
explain to rank the ``compute`` phase as the #1 contributor --
attribution must find planted regressions, not just describe noise.
A uniform compute slowdown is the clean probe: it leaves barrier skew
unchanged, so the delta lands in exactly one phase.  (Asymmetric
injections like a slower lock hold leak into every *other* node's
``sync`` wait -- which explain also surfaces, but as split shares.)
"""

import dataclasses

import pytest

from repro.config import ClusterConfig
from repro.harness.runner import run_application
from repro.obs.artifacts import result_summary
from repro.obs.explain import explain_history, explain_manifests, render_explain


def _manifest(result, run_id):
    return {"run_id": run_id, "git_rev": "test",
            "results": [result_summary(result)]}


def _run(config):
    result, _system = run_application("sor", "ccl", config, "test")
    return result


@pytest.fixture(scope="module")
def slowdown_doc():
    base_cfg = ClusterConfig.ultra5(num_nodes=4)
    slow_cpu = dataclasses.replace(base_cfg.cpu,
                                   flop_rate=base_cfg.cpu.flop_rate / 50)
    slow_cfg = base_cfg.with_changes(cpu=slow_cpu)
    fast, slow = _run(base_cfg), _run(slow_cfg)
    assert slow.total_time > fast.total_time
    return explain_manifests(_manifest(fast, "fast"), _manifest(slow, "slow"))


def test_injected_compute_slowdown_ranked_first(slowdown_doc):
    phases = slowdown_doc["phases"]
    assert phases, "phase attribution must not be empty"
    assert phases[0]["key"] == "compute", (
        f"expected the planted compute regression ranked #1, got {phases[0]}")
    assert phases[0]["delta"] > 0
    assert phases[0]["share"] == max(r["share"] for r in phases)


def test_headline_reports_total_time_delta(slowdown_doc):
    heads = {r["key"]: r for r in slowdown_doc["headline"]}
    row = heads["SOR/ccl total_time"]
    assert row["delta"] > 0
    assert row["pct"] > 0


def test_render_explain_mentions_top_phase(slowdown_doc):
    text = render_explain(slowdown_doc)
    assert "explain: A=fast" in text
    lines = text.splitlines()
    first_rank = next(ln for ln in lines if ln.strip().startswith("#1"))
    assert "compute" in first_rank


def test_explain_identical_runs_is_quiet():
    cfg = ClusterConfig.ultra5(num_nodes=4)
    result = _run(cfg)
    doc = explain_manifests(_manifest(result, "a"), _manifest(result, "b"))
    assert all(r["delta"] == 0 for r in doc["headline"])
    assert doc["phases"] == []  # zero-delta keys are dropped entirely


def test_explain_disjoint_manifests():
    a = {"run_id": "a", "results": [{"app": "x", "protocol": "ccl",
                                     "total_time": 1.0}]}
    b = {"run_id": "b", "results": [{"app": "y", "protocol": "ccl",
                                     "total_time": 2.0}]}
    doc = explain_manifests(a, b)
    assert doc["shared_results"] == []
    assert doc["headline"] == []
    assert "no (app, protocol) results in common" in render_explain(doc)


def test_explain_history_ranks_kernel_regressions():
    ea = {"ts": "t0", "git_rev": "aaa", "sim_events_per_sec": 1e6,
          "kernels_ns_per_op": {"create_diff_dense": 100.0,
                                "apply_diff_dense": 200.0}}
    eb = {"ts": "t1", "git_rev": "bbb", "sim_events_per_sec": 9e5,
          "kernels_ns_per_op": {"create_diff_dense": 400.0,
                                "apply_diff_dense": 210.0}}
    doc = explain_history(ea, eb)
    assert doc["headline"][0]["key"] == "sim_events_per_sec"
    assert doc["headline"][0]["pct"] == pytest.approx(-0.1)
    assert doc["kernels"][0]["key"] == "create_diff_dense"
    assert doc["kernels"][0]["delta"] == pytest.approx(300.0)
    text = render_explain(doc)
    first_rank = next(ln for ln in text.splitlines()
                      if ln.strip().startswith("#1"))
    assert "create_diff_dense" in first_rank
