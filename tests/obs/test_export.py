"""Chrome trace-event export and its schema validator."""

import json

import pytest

from repro.config import ClusterConfig
from repro.obs.export import (
    STRAND_TIDS,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import Tracer


def _tracer() -> Tracer:
    t = Tracer(enabled=True)
    s = t.begin(0.001, 0, "acquire", "sync", detail={"lock": 7})
    t.end(s, 0.002)
    eid = t.edge_send(0.001, 0, 1, "lock_req", 64)
    t.edge_recv(eid, 0.0015)
    open_sid = t.begin(0.003, 1, "compute", "cpu")
    assert open_sid >= 0  # left open on purpose
    return t


class TestChromeTrace:
    def test_complete_events_use_microseconds(self):
        doc = chrome_trace(_tracer())
        xs = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        x = xs["acquire"]
        assert x["pid"] == 0 and x["tid"] == STRAND_TIDS["main"]
        assert x["ts"] == pytest.approx(1000.0)  # 0.001 s -> µs
        assert x["dur"] == pytest.approx(1000.0)
        assert x["args"]["lock"] == 7
        # open spans (crash cut-off) are clamped, never negative
        assert xs["compute"]["dur"] >= 0.0

    def test_metadata_names_processes_and_threads(self):
        doc = chrome_trace(_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "thread_name"} <= names

    def test_flow_events_pair_send_and_recv(self):
        doc = chrome_trace(_tracer())
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"]
        assert starts[0]["pid"] == 0 and finishes[0]["pid"] == 1

    def test_validator_accepts_own_output(self):
        assert validate_chrome_trace(chrome_trace(_tracer())) == []

    def test_validator_catches_malformed_docs(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0,
                              "ts": -5.0, "dur": 1.0}]}
        )
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "s", "name": "flow", "pid": 0, "tid": 0,
                              "ts": 0.0, "id": 1}]}
        )  # unpaired flow

    def test_write_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "timeline.json"
        write_chrome_trace(_tracer(), str(path))
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []


class TestOnRealRun:
    def test_traced_run_exports_valid_timeline(self):
        from repro.analysis.sanitize import traced
        from repro.harness.runner import run_application

        config = ClusterConfig.ultra5(num_nodes=4)
        with traced():
            _result, system = run_application("sor", "ccl", config, "test")
        doc = chrome_trace(system.tracer)
        assert validate_chrome_trace(doc) == []
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == set(range(4))  # one timeline per node
