"""Unit tests for the streaming log-bucketed latency recorder."""

import json
import math
import random

import pytest

from repro.obs.latency import QUANTILES, SUBBUCKETS, LatencyRecorder


def test_empty_recorder():
    rec = LatencyRecorder()
    assert len(rec) == 0
    assert rec.mean == 0.0
    assert rec.quantile(0.5) == 0.0
    p = rec.percentiles()
    assert p["count"] == 0 and p["min"] == 0.0 and p["max"] == 0.0


def test_single_observation_is_exact_at_every_quantile():
    rec = LatencyRecorder()
    rec.observe(3.5e-4)
    for _, q in QUANTILES:
        assert rec.quantile(q) == pytest.approx(3.5e-4)
    assert rec.mean == pytest.approx(3.5e-4)
    assert rec.min == rec.max == pytest.approx(3.5e-4)


def test_relative_quantile_error_bound():
    """Any quantile is within one sub-bucket width (<= 1/(2*SUBBUCKETS))."""
    rng = random.Random(42)
    values = sorted(rng.uniform(1e-7, 1e-1) for _ in range(5000))
    rec = LatencyRecorder()
    for v in values:
        rec.observe(v)
    bound = 1.0 / (2 * SUBBUCKETS)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = values[min(len(values) - 1, math.ceil(q * len(values)) - 1)]
        est = rec.quantile(q)
        assert est >= exact * (1 - 1e-12), "quantile estimate must be an upper bound"
        assert est <= exact * (1 + bound) + 1e-15, (
            f"q={q}: {est} vs exact {exact} exceeds {bound:.1%} relative error")


def test_mean_total_are_exact():
    rec = LatencyRecorder()
    values = [1e-6, 2e-6, 3e-6, 10.0]
    for v in values:
        rec.observe(v)
    assert rec.total == pytest.approx(sum(values))
    assert rec.mean == pytest.approx(sum(values) / len(values))
    assert rec.min == pytest.approx(min(values))
    assert rec.max == pytest.approx(max(values))


def test_zero_and_negative_clamp_to_zero_bucket():
    rec = LatencyRecorder()
    rec.observe(0.0)
    rec.observe(-1.0)
    assert rec.count == 2
    assert rec.total == 0.0
    assert rec.quantile(0.99) == 0.0
    assert LatencyRecorder.bucket_upper(0) == 0.0


def test_merge_matches_union():
    rng = random.Random(7)
    a, b, union = LatencyRecorder(), LatencyRecorder(), LatencyRecorder()
    for i in range(2000):
        v = rng.expovariate(1e4)
        (a if i % 2 else b).observe(v)
        union.observe(v)
    merged = LatencyRecorder.merged([a, b])
    assert merged.count == union.count
    assert merged.total == pytest.approx(union.total)
    assert merged.buckets == union.buckets
    for q in (0.5, 0.99, 0.999):
        assert merged.quantile(q) == pytest.approx(union.quantile(q))
    # in-place merge returns self and accumulates
    assert a.merge(b) is a
    assert a.count == union.count


def test_snapshot_roundtrip_is_json_safe():
    rec = LatencyRecorder()
    for v in (1e-6, 5e-4, 0.25, 0.0):
        rec.observe(v)
    doc = json.loads(json.dumps(rec.snapshot()))
    back = LatencyRecorder.from_snapshot(doc)
    assert back.count == rec.count
    assert back.total == pytest.approx(rec.total)
    assert back.buckets == rec.buckets
    assert back.percentiles() == rec.percentiles()


def test_bounded_memory():
    """10^6 observations over 12 decades stay within a few KB of buckets."""
    rec = LatencyRecorder()
    rng = random.Random(3)
    for _ in range(100_000):
        rec.observe(10 ** rng.uniform(-9, 3))
    # 12 decades ~= 40 octaves * 16 sub-buckets
    assert len(rec.buckets) <= 41 * SUBBUCKETS
