"""The typed metrics registry and its Prometheus rendering."""

import pytest

from repro.config import ClusterConfig
from repro.harness.runner import run_application
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestRecording:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.counter("faults_total", 2, node=0)
        reg.counter("faults_total", 3, node=0)
        reg.counter("faults_total", 1, node=1)
        assert reg.get("faults_total", node=0) == 5
        assert reg.get("faults_total", node=1) == 1

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("time_seconds", 1.0)
        reg.gauge("time_seconds", 2.5)
        assert reg.get("time_seconds") == 2.5

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        for v in (5e-7, 5e-5, 0.5):
            reg.observe("dur_seconds", v, buckets=(1e-6, 1e-3, 1.0))
        state = reg.get("dur_seconds")
        assert state["buckets"] == [1, 2, 3, 3]  # le bounds + +Inf
        assert state["count"] == 3
        assert state["sum"] == pytest.approx(5e-7 + 5e-5 + 0.5)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total", 1.0)

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None


class TestPrometheusText:
    def test_scalar_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_faults_total", 4, help_text="page faults",
                    node=1, app="sor")
        text = reg.render_prometheus()
        assert "# HELP repro_faults_total page faults" in text
        assert "# TYPE repro_faults_total counter" in text
        # labels are emitted sorted by key
        assert 'repro_faults_total{app="sor",node="1"} 4' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.observe("d_seconds", 0.5, buckets=(0.1, 1.0))
        text = reg.render_prometheus()
        assert '# TYPE d_seconds histogram' in text
        assert 'd_seconds_bucket{le="0.1"} 0' in text
        assert 'd_seconds_bucket{le="1"} 1' in text
        assert 'd_seconds_bucket{le="+Inf"} 1' in text
        assert "d_seconds_sum 0.5" in text
        assert "d_seconds_count 1" in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestSnapshotAndFromRun:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.analysis.sanitize import traced

        config = ClusterConfig.ultra5(num_nodes=4)
        with traced():
            result, system = run_application("sor", "ccl", config, "test")
        return result, system.tracer

    def test_from_run_covers_headline_families(self, run):
        result, tracer = run
        reg = MetricsRegistry.from_run(result, tracer)
        assert reg.get("repro_run_time_seconds", app=result.app_name,
                       protocol=result.protocol) == result.total_time
        assert reg.get("repro_run_completed") == 1.0
        total = sum(s.counters.get("page_faults", 0)
                    for s in result.node_stats)
        per_node = sum(
            reg.get("repro_page_faults_total", node=n) or 0
            for n in range(4)
        )
        assert per_node == total
        hist = reg.get("repro_span_duration_seconds", cat="sync")
        assert hist is not None and hist["count"] > 0

    def test_from_run_exports_log_and_disk_families(self, run):
        result, tracer = run
        reg = MetricsRegistry.from_run(result, tracer)
        live = sum(s.get("live_log_bytes", 0) for s in result.log_summaries)
        reclaimed = sum(
            s.get("reclaimed_bytes", 0) for s in result.log_summaries
        )
        assert reg.get("repro_log_live_bytes") == float(live)
        assert reg.get("repro_log_reclaimed_bytes") == float(reclaimed)
        # per-op disk latency histograms, one series per op kind
        writes = sum(d["num_writes"] for d in result.disk_stats)
        hist_count = sum(
            (reg.get("repro_disk_op_latency_seconds", kind="write",
                     disk=d["name"]) or {"count": 0})["count"]
            for d in result.disk_stats
        )
        assert hist_count == writes > 0

    def test_snapshot_is_json_safe_and_round_trips(self, run):
        import json

        result, tracer = run
        reg = MetricsRegistry.from_run(result, tracer)
        doc = json.loads(json.dumps(reg.snapshot()))
        fam = doc["repro_span_duration_seconds"]
        assert fam["type"] == "histogram"
        assert fam["buckets"] == list(DEFAULT_BUCKETS)
        assert all("labels" in s and "value" in s for s in fam["samples"])


class TestReplicationAndZoneFamilies:
    """Quorum-replication and fault-domain families (gated on use)."""

    @pytest.fixture(scope="class")
    def replicated_run(self):
        config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
        result, _system = run_application(
            "sor", "failover", config, "test", verify=False, replication=2,
        )
        return result

    def test_plain_run_emits_no_replication_families(self):
        config = ClusterConfig.ultra5(num_nodes=4)
        result, _system = run_application("sor", "ccl", config, "test")
        text = MetricsRegistry.from_run(result).render_prometheus()
        assert "repro_replication_" not in text
        assert "repro_zone_alive" not in text

    def test_failover_counter_matches_replicator_stats(self, replicated_run):
        reg = MetricsRegistry.from_run(replicated_run)
        for stats in replicated_run.replication_stats:
            assert reg.get("repro_replication_failovers_total",
                           node=stats["node"]) == stats["failovers"]
            assert reg.get("repro_replication_mirror_bytes_total",
                           node=stats["node"]) == stats["mirror_bytes"]

    def test_quorum_latency_histogram_counts_every_wait(self, replicated_run):
        reg = MetricsRegistry.from_run(replicated_run)
        for stats in replicated_run.replication_stats:
            waits = stats["quorum_waits"]
            hist = reg.get("repro_replication_quorum_latency_seconds",
                           node=stats["node"])
            if not waits:
                assert hist is None
                continue
            assert hist["count"] == len(waits)
            assert hist["sum"] == pytest.approx(sum(waits))

    def test_zone_alive_gauges_cover_every_fault_domain(self, replicated_run):
        reg = MetricsRegistry.from_run(replicated_run)
        # failure-free run: every zone keeps all its nodes
        for zone in sorted(set(replicated_run.zones)):
            assert reg.get("repro_zone_alive", zone=zone) == 1.0

    def test_zone_alive_drops_when_fault_domain_is_wiped(self, replicated_run):
        import copy

        result = copy.copy(replicated_run)
        result.dead_nodes = [
            n for n, z in enumerate(result.zones) if z == 1
        ]
        reg = MetricsRegistry.from_run(result)
        assert reg.get("repro_zone_alive", zone=0) == 1.0
        assert reg.get("repro_zone_alive", zone=1) == 0.0
