"""Prometheus text-exposition conformance for the metrics registry.

Checks the format invariants scrapers rely on -- cumulative histogram
buckets ending in ``+Inf``, ``_sum``/``_count`` series, label value
escaping -- and pins the exact rendering with a golden snapshot
(``golden_exposition.txt``), so an accidental format change shows up as
a reviewable diff.
"""

import re
from pathlib import Path

import pytest

from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden_exposition.txt"


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_test_events_total", 3, help_text="events seen",
                node=0)
    reg.counter("repro_test_events_total", 2, node=1)
    reg.gauge("repro_test_temperature", 1.5, help_text="a gauge")
    for v in (5e-7, 5e-6, 5e-4, 2.0):
        reg.observe("repro_test_latency_seconds", v,
                    help_text="a histogram", op="acquire")
    return reg


def _parse_samples(text: str):
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = re.fullmatch(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)", line)
        assert m, f"malformed exposition line: {line!r}"
        samples.append((m.group(1), m.group(2) or "", float(m.group(3))))
    return samples


def test_exposition_lines_are_well_formed():
    for name, labels, _value in _parse_samples(_registry().render_prometheus()):
        assert name.startswith("repro_")
        if labels:
            assert re.fullmatch(
                r'\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)+\}', labels
            ), f"malformed label set: {labels!r}"


def test_histogram_invariants():
    """Buckets are cumulative, end at +Inf == _count, and _sum is exact."""
    samples = _parse_samples(_registry().render_prometheus())
    buckets = [(lbl, v) for n, lbl, v in samples
               if n == "repro_test_latency_seconds_bucket"]
    count = next(v for n, _lbl, v in samples
                 if n == "repro_test_latency_seconds_count")
    total = next(v for n, _lbl, v in samples
                 if n == "repro_test_latency_seconds_sum")

    assert buckets[-1][0].endswith('le="+Inf"}'), "last bucket must be +Inf"
    counts = [v for _lbl, v in buckets]
    assert counts == sorted(counts), "histogram buckets must be cumulative"
    assert counts[-1] == count == 4
    # %g rendering keeps 6 significant digits
    assert total == pytest.approx(5e-7 + 5e-6 + 5e-4 + 2.0, rel=1e-5)

    # every observation <= a finite bound is inside that bucket
    le_bounds = [float(lbl.rsplit('le="', 1)[1].rstrip('"}'))
                 for lbl, _v in buckets[:-1]]
    assert le_bounds == sorted(le_bounds)
    assert counts[0] == 1   # only 5e-7 <= 1e-6
    assert counts[2] == 2   # 5e-7, 5e-6 <= 1e-4


def test_type_and_help_headers():
    text = _registry().render_prometheus()
    assert "# TYPE repro_test_events_total counter" in text
    assert "# TYPE repro_test_temperature gauge" in text
    assert "# TYPE repro_test_latency_seconds histogram" in text
    assert "# HELP repro_test_events_total events seen" in text


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.gauge("repro_test_escape", 1.0,
              path='C:\\runs\\"best"', note="line1\nline2")
    text = reg.render_prometheus()
    line = next(ln for ln in text.splitlines() if ln.startswith("repro_test_escape"))
    assert r'path="C:\\runs\\\"best\""' in line
    assert r'note="line1\nline2"' in line
    assert "\n" not in line  # the newline must be escaped, not literal


def test_golden_exposition_snapshot():
    """Pin the exact rendering; regenerate deliberately on format changes:

    PYTHONPATH=src python -c "
    from tests.obs.test_prometheus_conformance import _registry, GOLDEN
    GOLDEN.write_text(_registry().render_prometheus())"
    """
    assert GOLDEN.exists(), f"golden snapshot missing: {GOLDEN}"
    assert _registry().render_prometheus() == GOLDEN.read_text()


GOLDEN_REPLICATION = Path(__file__).parent / "golden_replication_exposition.txt"

REPLICATION_FAMILIES = (
    "repro_replication_failovers_total",
    "repro_replication_mirror_bytes_total",
    "repro_replication_quorum_latency_seconds",
    "repro_zone_alive",
)


def _replication_exposition() -> str:
    """The replication/zone family lines of one deterministic run."""
    from repro.config import ClusterConfig
    from repro.harness.runner import run_application

    config = ClusterConfig.ultra5(num_nodes=4).with_zones(2)
    result, _system = run_application(
        "sor", "failover", config, "test", verify=False, replication=2,
    )
    text = MetricsRegistry.from_run(result).render_prometheus()
    keep = [
        line for line in text.splitlines()
        if any(line.startswith(f"# HELP {fam}")
               or line.startswith(f"# TYPE {fam}")
               or line.startswith(fam)
               for fam in REPLICATION_FAMILIES)
    ]
    return "\n".join(keep) + "\n"


def test_replication_families_are_well_formed():
    for name, labels, _value in _parse_samples(_replication_exposition()):
        assert name.startswith("repro_replication_") or name.startswith(
            "repro_zone_"
        )
        if labels:
            assert re.fullmatch(
                r'\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)+\}', labels
            ), f"malformed label set: {labels!r}"


def test_replication_quorum_histogram_invariants():
    samples = _parse_samples(_replication_exposition())
    name = "repro_replication_quorum_latency_seconds"
    by_node = {}
    for n, lbl, v in samples:
        if n == f"{name}_bucket":
            node = lbl.split('node="', 1)[1].split('"', 1)[0]
            by_node.setdefault(node, []).append((lbl, v))
    assert by_node, "replicated run emitted no quorum latency series"
    for node, buckets in by_node.items():
        assert buckets[-1][0].endswith('le="+Inf"}')
        counts = [v for _lbl, v in buckets]
        assert counts == sorted(counts), (
            f"node {node} buckets must be cumulative"
        )
        count = next(v for n, lbl, v in samples
                     if n == f"{name}_count" and f'node="{node}"' in lbl)
        assert counts[-1] == count > 0


def test_replication_golden_snapshot():
    """Pin the replication/zone exposition; regenerate deliberately:

    PYTHONPATH=src python -c "
    from tests.obs.test_prometheus_conformance import (
        _replication_exposition, GOLDEN_REPLICATION)
    GOLDEN_REPLICATION.write_text(_replication_exposition())"
    """
    assert GOLDEN_REPLICATION.exists(), (
        f"golden snapshot missing: {GOLDEN_REPLICATION}"
    )
    assert _replication_exposition() == GOLDEN_REPLICATION.read_text()
