"""Tracing-off fast path: zero span/edge allocation on a full app run.

PR 7 made span construction lazy: hot sites check the module-level
``TRACING_ACTIVE`` flag (and their tracer's ``enabled``) before building
span names or detail dicts.  This is the regression guard: with tracing
disabled, a complete application run must never call the tracer's
allocating entry points (``begin``/``end``/``edge_send``/``edge_recv``)
and must leave the span/edge/event buffers empty.  ``record()`` may be
*called* on the no-allocation path only through guarded sites, so it is
counted too.
"""

import pytest

from repro.config import ClusterConfig
from repro.dsm import DsmSystem
from repro.harness.runner import run_application
from repro.sim import trace as trace_mod
from repro.sim.trace import Tracer


class CountingTracer(Tracer):
    """A disabled tracer that counts entry-point calls."""

    def __init__(self):
        super().__init__(enabled=False)
        self.calls = {"record": 0, "begin": 0, "end": 0,
                      "edge_send": 0, "edge_recv": 0}

    def record(self, *a, **kw):
        self.calls["record"] += 1
        return super().record(*a, **kw)

    def begin(self, *a, **kw):
        self.calls["begin"] += 1
        return super().begin(*a, **kw)

    def end(self, *a, **kw):
        self.calls["end"] += 1
        return super().end(*a, **kw)

    def edge_send(self, *a, **kw):
        self.calls["edge_send"] += 1
        return super().edge_send(*a, **kw)

    def edge_recv(self, *a, **kw):
        self.calls["edge_recv"] += 1
        return super().edge_recv(*a, **kw)


def test_enabled_setter_maintains_tracing_active(monkeypatch):
    monkeypatch.setattr(trace_mod, "_enabled_tracers", 0)
    monkeypatch.setattr(trace_mod, "TRACING_ACTIVE", False)
    t = Tracer(enabled=False)
    assert trace_mod.TRACING_ACTIVE is False
    t.enabled = True
    assert trace_mod.TRACING_ACTIVE is True
    t.enabled = False
    assert trace_mod.TRACING_ACTIVE is False


def test_full_run_allocates_no_spans_or_edges(monkeypatch, request):
    """A whole app run with tracing off must not touch the tracer.

    Other tests construct enabled tracers without ever disabling them,
    which leaves the module-level refcount (and thus TRACING_ACTIVE)
    high for the rest of the session; reset both so this test sees the
    state a fresh tracing-off process sees.
    """
    if request.config.getoption("--sanitize"):
        pytest.skip("--sanitize forces tracing on; no tracing-off path")
    monkeypatch.setattr(trace_mod, "_enabled_tracers", 0)
    monkeypatch.setattr(trace_mod, "TRACING_ACTIVE", False)

    counting = CountingTracer()
    original_init = DsmSystem.__init__

    def patched_init(self, *args, **kwargs):
        kwargs["tracer"] = counting
        original_init(self, *args, **kwargs)

    monkeypatch.setattr(DsmSystem, "__init__", patched_init)
    result, system = run_application(
        "water", "ccl", ClusterConfig.ultra5(num_nodes=4), "test")

    assert system.tracer is counting
    assert result.completed
    # water exercises locks, barriers, faults, diffs, and log flushes --
    # every instrumented path -- yet nothing was allocated:
    assert len(counting.spans) == 0
    assert len(counting.edges) == 0
    assert len(counting.events) == 0
    # and the span/edge entry points were never even *called*: the
    # TRACING_ACTIVE guard short-circuits before argument construction
    for name in ("begin", "end", "edge_send", "edge_recv", "record"):
        assert counting.calls[name] == 0, (
            f"tracer.{name} called {counting.calls[name]} times with "
            "tracing disabled -- a call site lost its TRACING_ACTIVE guard")


def test_latency_recorders_stay_on_with_tracing_off(monkeypatch):
    """The always-on latency histograms are independent of tracing."""
    result, _system = run_application(
        "water", "ccl", ClusterConfig.ultra5(num_nodes=4), "test")
    latency = result.aggregate.latency
    for op in ("lock_acquire", "barrier", "page_fetch",
               "lock_queue_wait", "barrier_gather"):
        assert op in latency, f"missing always-on recorder for {op}"
        assert latency[op].count > 0
        assert latency[op].quantile(0.99) > 0
