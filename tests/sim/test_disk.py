"""Unit tests for the disk model."""

import pytest

from repro.config import DiskConfig
from repro.errors import SimulationError
from repro.sim import Disk, Simulator


def test_write_time_is_write_latency_plus_transfer():
    sim = Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=0.5, write_latency_s=0.01, bandwidth_bps=1e6),
    )
    times = []

    def body():
        t = yield disk.write(100_000)
        times.append(t)

    sim.spawn(body(), name="p")
    sim.run()
    assert times[0] == pytest.approx(0.01 + 0.1)


def test_read_pays_cold_access_latency():
    sim = Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=0.5, write_latency_s=0.01, bandwidth_bps=1e6),
    )
    times = []

    def body():
        t = yield disk.read(100_000)
        times.append(t)

    sim.spawn(body(), name="p")
    sim.run()
    assert times[0] == pytest.approx(0.5 + 0.1)


def test_operations_queue_fifo():
    sim = Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=1.0, write_latency_s=1.0, bandwidth_bps=1e6),
    )
    times = []

    def body():
        a = disk.write(1_000_000)
        b = disk.read(1_000_000)
        ta = yield a
        tb = yield b
        times.extend([ta, tb])

    sim.spawn(body(), name="p")
    sim.run()
    assert times == [pytest.approx(2.0), pytest.approx(4.0)]


def test_zero_byte_ops_complete_immediately():
    """write(0)/read(0) are free: no latency charge, no queueing."""
    sim = Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=1.0, write_latency_s=1.0, bandwidth_bps=1e6),
    )
    times = []

    def body():
        t0 = sim.now
        yield disk.write(0)
        yield disk.read(0)
        yield disk.read_seq(0)
        yield disk.read_cached(0)
        times.append(sim.now - t0)

    sim.spawn(body(), name="p")
    sim.run()
    assert times == [0.0]
    assert disk.num_writes == 1 and disk.num_reads == 3
    assert disk.bytes_written == 0 and disk.bytes_read == 0
    assert disk.busy_time == 0.0
    assert disk.op_latencies == {
        "write": [0.0], "read": [0.0], "read_seq": [0.0], "read_cached": [0.0],
    }


def test_op_latencies_include_queueing():
    sim = Simulator()
    disk = Disk(
        sim,
        DiskConfig(access_latency_s=1.0, write_latency_s=1.0, bandwidth_bps=1e6),
    )

    def body():
        a = disk.write(1_000_000)  # 1.0 latency + 1.0 transfer
        b = disk.read(1_000_000)   # queued behind a
        yield a
        yield b

    sim.spawn(body(), name="p")
    sim.run()
    assert disk.op_latencies["write"] == [pytest.approx(2.0)]
    assert disk.op_latencies["read"] == [pytest.approx(4.0)]
    summary = disk.summary()
    assert summary["num_writes"] == 1
    assert summary["op_latencies"]["read"] == [pytest.approx(4.0)]


def test_async_write_overlaps_with_caller():
    """A caller may keep working while a write completes in background."""
    sim = Simulator()
    disk = Disk(sim, DiskConfig(write_latency_s=0.5, bandwidth_bps=1e9))
    log = []

    def body():
        sig = disk.write(10)
        log.append(("issued", sim.now))
        # caller does other things; the disk spins in background
        t = yield sig
        log.append(("complete", t))

    sim.spawn(body(), name="p")
    sim.run()
    assert log[0] == ("issued", 0.0)
    assert log[1][1] == pytest.approx(0.5 + 10 / 1e9)


def test_statistics_accumulate():
    sim = Simulator()
    disk = Disk(sim, DiskConfig())
    disk.write(1000)
    disk.write(2000)
    disk.read(500)
    assert disk.bytes_written == 3000
    assert disk.bytes_read == 500
    assert disk.num_writes == 2
    assert disk.num_reads == 1
    assert disk.busy_time > 0
    sim.run()


def test_negative_sizes_rejected():
    sim = Simulator()
    disk = Disk(sim, DiskConfig())
    with pytest.raises(SimulationError):
        disk.write(-1)
    with pytest.raises(SimulationError):
        disk.read(-1)
