"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator, Signal, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_executes_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(("b", sim.now)))
    sim.schedule(1.0, lambda: seen.append(("a", sim.now)))
    sim.schedule(3.0, lambda: seen.append(("c", sim.now)))
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_equal_times_run_in_scheduling_order():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: seen.append(i))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_run_until_stops_clock_before_future_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(True))
    t = sim.run(until=5.0)
    assert t == 5.0
    assert not fired
    sim.run()  # remaining event still runs afterwards
    assert fired == [True]


def test_simple_process_advances_time():
    sim = Simulator()

    def body():
        yield Timeout(1.5)
        yield Timeout(2.5)
        return "done"

    proc = sim.spawn(body(), name="p")
    sim.run()
    assert proc.finished
    assert proc.result == "done"
    assert sim.now == 4.0


def test_process_return_value_none_by_default():
    sim = Simulator()

    def body():
        yield Timeout(0.0)

    proc = sim.spawn(body(), name="p")
    sim.run()
    assert proc.finished and proc.result is None


def test_nested_yield_from_composes_timelines():
    sim = Simulator()

    def inner():
        yield Timeout(1.0)
        return 41

    def outer():
        v = yield from inner()
        yield Timeout(1.0)
        return v + 1

    proc = sim.spawn(outer(), name="outer")
    sim.run()
    assert proc.result == 42
    assert sim.now == 2.0


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def worker(name, delay):
        for _ in range(3):
            yield Timeout(delay)
            order.append((name, sim.now))

    sim.spawn(worker("fast", 1.0), name="fast")
    sim.spawn(worker("slow", 1.6), name="slow")
    sim.run()
    expected = [
        ("fast", 1.0),
        ("slow", 1.6),
        ("fast", 2.0),
        ("fast", 3.0),
        ("slow", 3.2),
        ("slow", 4.8),
    ]
    assert [name for name, _ in order] == [name for name, _ in expected]
    for (_, t), (_, te) in zip(order, expected):
        assert t == pytest.approx(te)


def test_wait_on_signal_resumes_with_value():
    sim = Simulator()
    sig = Signal("x")
    got = []

    def waiter():
        v = yield sig
        got.append(v)

    sim.spawn(waiter(), name="w")
    sim.schedule(3.0, lambda: sig.trigger("hello"))
    sim.run()
    assert got == ["hello"]
    assert sim.now == 3.0


def test_wait_on_already_triggered_signal_is_instant():
    sim = Simulator()
    sig = Signal("x")
    sig.trigger(7)

    def waiter():
        v = yield sig
        return v

    proc = sim.spawn(waiter(), name="w")
    sim.run()
    assert proc.result == 7
    assert sim.now == 0.0


def test_join_process_by_yielding_it():
    sim = Simulator()

    def child():
        yield Timeout(2.0)
        return "child-result"

    def parent():
        c = sim.spawn(child(), name="child")
        v = yield c
        return v

    p = sim.spawn(parent(), name="parent")
    sim.run()
    assert p.result == "child-result"


def test_deadlock_detection_names_blocked_process():
    sim = Simulator()
    sig = Signal("never")

    def stuck():
        yield sig

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as ei:
        sim.run()
    assert "stuck-proc" in str(ei.value)


def test_deadlock_detection_can_be_disabled():
    sim = Simulator()
    sig = Signal("never")

    def stuck():
        yield sig

    sim.spawn(stuck(), name="stuck")
    sim.run(detect_deadlock=False)  # should not raise


def test_process_exception_propagates_as_simulation_error():
    sim = Simulator()

    def bad():
        yield Timeout(1.0)
        raise ValueError("boom")

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError, match="boom"):
        sim.run()


def test_kill_process_stops_progress_and_runs_finally():
    sim = Simulator()
    cleaned = []

    def body():
        try:
            yield Timeout(100.0)
        finally:
            cleaned.append(True)

    proc = sim.spawn(body(), name="victim")
    sim.schedule(1.0, proc.kill)
    sim.run()
    assert proc.killed and not proc.finished
    assert cleaned == [True]
    assert not proc.done.triggered


def test_killed_process_not_counted_as_deadlocked():
    sim = Simulator()
    sig = Signal("never")

    def body():
        yield sig

    proc = sim.spawn(body(), name="victim")
    sim.schedule(1.0, proc.kill)
    sim.run()  # no DeadlockError: the victim is dead, not blocked
    assert proc.killed


def test_yield_unknown_request_raises():
    sim = Simulator()

    def bad():
        yield "not-a-request"

    sim.spawn(bad(), name="bad")
    with pytest.raises(SimulationError, match="unsupported request"):
        sim.run()


def test_spawn_during_run_executes_new_process():
    sim = Simulator()
    seen = []

    def late():
        yield Timeout(1.0)
        seen.append(sim.now)

    def spawner():
        yield Timeout(5.0)
        sim.spawn(late(), name="late")

    sim.spawn(spawner(), name="spawner")
    sim.run()
    assert seen == [6.0]


# ----------------------------------------------------------------------
# controlled scheduler (schedule_labeled + choice_fn)
# ----------------------------------------------------------------------
def test_schedule_labeled_without_choice_fn_is_plain_schedule():
    sim = Simulator()
    seen = []
    sim.schedule_labeled(2.0, lambda: seen.append(("b", sim.now)), "b")
    sim.schedule_labeled(1.0, lambda: seen.append(("a", sim.now)), "a")
    sim.run()
    assert seen == [("a", 1.0), ("b", 2.0)]
    assert sim._choices == []


def test_schedule_labeled_negative_delay_rejected_under_choice_fn():
    sim = Simulator()
    sim.choice_fn = lambda choices: None
    with pytest.raises(SimulationError):
        sim.schedule_labeled(-0.5, lambda: None, "x")


def test_choice_fn_controls_delivery_order():
    sim = Simulator()
    seen = []
    # pick held-back events in reverse label order, against their times
    sim.choice_fn = lambda cs: max(cs, key=lambda c: c.label)
    sim.schedule_labeled(1.0, lambda: seen.append("a"), "a")
    sim.schedule_labeled(2.0, lambda: seen.append("b"), "b")
    sim.schedule_labeled(3.0, lambda: seen.append("c"), "c")
    sim.run()
    assert seen == ["c", "b", "a"]


def test_choice_fn_clock_clamps_forward_only():
    sim = Simulator()
    times = []
    sim.choice_fn = lambda cs: max(cs, key=lambda c: c.time)
    sim.schedule_labeled(1.0, lambda: times.append(sim.now), "early")
    sim.schedule_labeled(5.0, lambda: times.append(sim.now), "late")
    sim.run()
    # the late event runs first at t=5; the early one must not rewind
    assert times == [5.0, 5.0]


def test_choice_fn_returning_none_leaves_choices_parked():
    sim = Simulator()
    seen = []
    sim.choice_fn = lambda cs: None
    sim.schedule_labeled(1.0, lambda: seen.append("a"), "a")
    sim.run()
    assert seen == []
    assert [c.label for c in sim._choices] == ["a"]


def test_choice_fn_interleaves_with_heap_events():
    sim = Simulator()
    seen = []
    sim.choice_fn = lambda cs: cs[0]

    def chosen():
        seen.append(("chosen", sim.now))
        # a chosen delivery may schedule ordinary follow-up work
        sim.schedule(1.0, lambda: seen.append(("followup", sim.now)))

    sim.schedule(1.0, lambda: seen.append(("heap", sim.now)))
    sim.schedule_labeled(2.0, chosen, "d")
    sim.run()
    # heap drains first, then the parked choice fires, then its follow-up
    assert seen == [("heap", 1.0), ("chosen", 2.0), ("followup", 3.0)]
