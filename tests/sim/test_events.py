"""Unit tests for Signal / Timeout / AllOf."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, Signal, Simulator, Timeout


def test_timeout_rejects_negative_delay():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_signal_trigger_twice_is_error():
    sig = Signal("s")
    sig.trigger(1)
    with pytest.raises(SimulationError):
        sig.trigger(2)


def test_signal_remembers_value_for_late_callbacks():
    sig = Signal("s")
    sig.trigger("v")
    got = []
    sig.add_callback(got.append)
    assert got == ["v"]


def test_signal_callbacks_fire_in_registration_order():
    sig = Signal("s")
    order = []
    sig.add_callback(lambda _v: order.append(1))
    sig.add_callback(lambda _v: order.append(2))
    sig.add_callback(lambda _v: order.append(3))
    sig.trigger(None)
    assert order == [1, 2, 3]


def test_signal_discard_callback_prevents_delivery():
    sig = Signal("s")
    got = []
    cb = got.append
    sig.add_callback(cb)
    sig.discard_callback(cb)
    sig.trigger("x")
    assert got == []


def test_allof_waits_for_every_signal():
    sim = Simulator()
    sigs = [Signal(f"s{i}") for i in range(3)]
    results = []

    def waiter():
        values = yield AllOf(sigs)
        results.append((sim.now, values))

    sim.spawn(waiter(), name="w")
    sim.schedule(1.0, lambda: sigs[2].trigger("c"))
    sim.schedule(2.0, lambda: sigs[0].trigger("a"))
    sim.schedule(3.0, lambda: sigs[1].trigger("b"))
    sim.run()
    # resumes only when the LAST signal fires; values keep input order
    assert results == [(3.0, ["a", "b", "c"])]


def test_allof_empty_completes_immediately():
    sim = Simulator()
    results = []

    def waiter():
        values = yield AllOf([])
        results.append(values)

    sim.spawn(waiter(), name="w")
    sim.run()
    assert results == [[]]
    assert sim.now == 0.0


def test_allof_with_pretriggered_signals():
    sim = Simulator()
    s1, s2 = Signal("1"), Signal("2")
    s1.trigger(10)
    s2.trigger(20)

    def waiter():
        values = yield AllOf([s1, s2])
        return values

    p = sim.spawn(waiter(), name="w")
    sim.run()
    assert p.result == [10, 20]
