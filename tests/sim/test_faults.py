"""Unit tests for deterministic fault injection."""

import pytest

from repro.config import NetworkConfig
from repro.errors import SimulationError
from repro.sim import (
    DiskFaultPlan,
    DiskFaults,
    FaultPlan,
    LinkFaults,
    NetMessage,
    Network,
    Simulator,
)


def make_net(sim, plan=None, num_nodes=4, **kw):
    return Network(sim, NetworkConfig(**kw), num_nodes=num_nodes,
                   fault_plan=plan)


class TestLinkFaults:
    def test_probabilities_are_validated(self):
        with pytest.raises(SimulationError):
            LinkFaults(drop=1.5)
        with pytest.raises(SimulationError):
            LinkFaults(dup=-0.1)
        with pytest.raises(SimulationError):
            LinkFaults(delay_s=-1e-6)

    def test_quiet(self):
        assert LinkFaults().quiet
        assert not LinkFaults(reorder=0.1).quiet


class TestFaultPlan:
    def test_none_is_inactive(self):
        assert not FaultPlan.none().active

    def test_uniform_is_active(self):
        assert FaultPlan.uniform(0, drop=0.1).active

    def test_kill_alone_activates(self):
        assert FaultPlan(seed=0).kill(1, 0.5).active

    def test_bad_kill_rejected(self):
        with pytest.raises(SimulationError):
            FaultPlan(seed=0).kill(-1, 0.5)
        with pytest.raises(SimulationError):
            FaultPlan(seed=0).kill(1, -0.5)

    def test_resolution_order_kind_beats_link_beats_default(self):
        loud = LinkFaults(drop=0.5)
        louder = LinkFaults(drop=0.9)
        plan = FaultPlan(seed=0, default=LinkFaults(drop=0.1),
                         links={(0, 1): loud}, kinds={"diff": louder})
        assert plan.faults_for(0, 1, "diff") is louder
        assert plan.faults_for(0, 1, "page_req") is loud
        assert plan.faults_for(2, 3, "page_req").drop == 0.1

    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan.uniform(42, drop=0.3, dup=0.3, delay=0.3,
                                     reorder=0.3)
            draws.append(
                [plan.delivery_delays(0, 1, "x") for _ in range(200)]
            )
        assert draws[0] == draws[1]

    def test_quiet_class_consumes_no_randomness(self):
        plan = FaultPlan(seed=7, links={(0, 1): LinkFaults(drop=1.0)})
        before = plan._rng.getstate()
        assert plan.delivery_delays(2, 3, "x") == [0.0]
        assert plan._rng.getstate() == before

    def test_drop_returns_no_copies(self):
        plan = FaultPlan.uniform(0, drop=1.0)
        assert plan.delivery_delays(0, 1, "x") == []
        assert plan.dropped == 1

    def test_dup_returns_two_copies(self):
        plan = FaultPlan.uniform(0, dup=1.0)
        delays = plan.delivery_delays(0, 1, "x")
        assert len(delays) == 2
        assert plan.duplicated == 1

    def test_struck_dead_covers_in_flight_and_later(self):
        plan = FaultPlan(seed=0).kill(2, 1.0)
        assert not plan.struck_dead(0, 2, 0.999)
        assert plan.struck_dead(0, 2, 1.0)      # in flight at the kill
        assert plan.struck_dead(2, 0, 5.0)      # victim as sender
        assert not plan.struck_dead(0, 1, 5.0)  # unrelated link

    def test_describe_mentions_kills(self):
        text = FaultPlan.uniform(3, drop=0.25).kill(1, 0.5).describe()
        assert "seed=3" in text and "drop=0.25" in text and "1@0.5" in text


class TestFaultedNetwork:
    def msgs(self, net, sim, n=20, src=0, dst=1):
        got = []

        def sender():
            for i in range(n):
                yield from net.send(
                    NetMessage(src=src, dst=dst, kind="x", size=64, payload=i)
                )

        def receiver():
            while True:
                m = yield net.mailbox(dst).get()
                got.append(m.payload)

        sim.spawn(sender(), name="s")
        rx = sim.spawn(receiver(), name="r")
        sim.run(detect_deadlock=False)
        rx.kill()
        return got

    def test_drop_all_delivers_nothing(self):
        sim = Simulator()
        net = make_net(sim, FaultPlan.uniform(0, drop=1.0))
        assert self.msgs(net, sim) == []

    def test_dup_all_delivers_everything_twice(self):
        sim = Simulator()
        net = make_net(sim, FaultPlan.uniform(0, dup=1.0))
        got = self.msgs(net, sim, n=10)
        assert sorted(got) == sorted(list(range(10)) * 2)

    def test_reorder_shuffles_but_loses_nothing(self):
        sim = Simulator()
        net = make_net(sim, FaultPlan.uniform(1, reorder=0.5))
        got = self.msgs(net, sim, n=40)
        assert sorted(got) == list(range(40))
        assert got != list(range(40))  # seed 1 does reorder at 0.5

    def test_inert_plan_takes_fault_free_path(self):
        sim = Simulator()
        net = make_net(sim, FaultPlan.none())
        assert not net._faulty
        assert self.msgs(net, sim, n=5) == list(range(5))

    def test_live_kill_discards_in_flight_frames(self):
        sim = Simulator()
        plan = FaultPlan(seed=0).kill(1, 0.0)  # dead from the start
        net = make_net(sim, plan)
        got = self.msgs(net, sim, n=5)
        assert got == []
        assert plan.dead_discards == 5


class TestDiskFaults:
    def test_probabilities_are_validated(self):
        with pytest.raises(SimulationError):
            DiskFaults(torn_tail=1.5)
        with pytest.raises(SimulationError):
            DiskFaults(write_error=-0.1)
        with pytest.raises(SimulationError):
            DiskFaults(bitrot=2.0)
        with pytest.raises(SimulationError):
            DiskFaults(max_retries=-1)
        with pytest.raises(SimulationError):
            DiskFaults(retry_backoff_s=-1e-6)

    def test_quiet(self):
        assert DiskFaults().quiet
        assert not DiskFaults(torn_tail=0.1).quiet
        assert not DiskFaults(write_error=0.1).quiet
        assert not DiskFaults(bitrot=0.1).quiet


class TestDiskFaultPlan:
    def test_none_is_inactive(self):
        assert not DiskFaultPlan.none().active

    def test_uniform_is_active(self):
        assert DiskFaultPlan.uniform(0, torn_tail=0.1).active

    def test_per_node_override_activates(self):
        plan = DiskFaultPlan(seed=0, nodes={2: DiskFaults(bitrot=0.5)})
        assert plan.active
        assert plan.faults_for(2).bitrot == 0.5
        assert plan.faults_for(0).quiet

    def test_torn_bytes_is_pure_in_seed_node_seq(self):
        plan = DiskFaultPlan.uniform(11, torn_tail=0.7)
        draws = [plan.torn_bytes(1, s, 500) for s in range(50)]
        again = DiskFaultPlan.uniform(11, torn_tail=0.7)
        assert draws == [again.torn_bytes(1, s, 500) for s in range(50)]
        # mixed outcome at this rate, and every tear is a proper prefix
        assert any(d is None for d in draws)
        survived = [d for d in draws if d is not None]
        assert survived and all(0 <= d < 500 for d in survived)
        # different node -> independent stream
        assert draws != [plan.torn_bytes(2, s, 500) for s in range(50)]

    def test_bitrot_flip_is_pure_and_single_bit(self):
        plan = DiskFaultPlan.uniform(5, bitrot=0.6)
        draws = [plan.bitrot_flip(0, s, 256) for s in range(50)]
        assert draws == [plan.bitrot_flip(0, s, 256) for s in range(50)]
        flips = [d for d in draws if d is not None]
        assert flips
        for off, mask in flips:
            assert 0 <= off < 256
            assert mask in {1 << b for b in range(8)}

    def test_zero_rates_draw_nothing(self):
        plan = DiskFaultPlan.none()
        assert plan.torn_bytes(0, 0, 100) is None
        assert plan.bitrot_flip(0, 0, 100) is None
        assert not plan.write_fails(0)
        assert plan.write_errors == 0

    def test_write_fails_stream_is_seeded(self):
        a = DiskFaultPlan.uniform(9, write_error=0.5)
        b = DiskFaultPlan.uniform(9, write_error=0.5)
        seq = [a.write_fails(0) for _ in range(100)]
        assert seq == [b.write_fails(0) for _ in range(100)]
        assert a.write_errors == sum(seq) > 0
        assert a.summary() == {"write_errors": a.write_errors}

    def test_describe_carries_the_rates(self):
        text = DiskFaultPlan.uniform(4, torn_tail=0.25, bitrot=0.1).describe()
        assert "disk-seed=4" in text
        assert "torn=0.25" in text and "bitrot=0.1" in text
