"""Unit tests for the switched-Ethernet model."""

import pytest

from repro.config import NetworkConfig
from repro.errors import SimulationError
from repro.sim import NetMessage, Network, Simulator


def make_net(sim, **kw):
    return Network(sim, NetworkConfig(**kw), num_nodes=4)


def test_message_delivery_time_matches_model():
    sim = Simulator()
    cfg = NetworkConfig(
        latency_s=100e-6, bandwidth_bps=1e6, send_overhead_s=10e-6, recv_overhead_s=5e-6
    )
    net = Network(sim, cfg, num_nodes=2)
    arrivals = []

    def sender():
        yield from net.send(NetMessage(src=0, dst=1, kind="x", size=1000))

    def receiver():
        msg = yield net.mailbox(1).get()
        arrivals.append((msg.kind, sim.now))

    sim.spawn(sender(), name="s")
    sim.spawn(receiver(), name="r")
    sim.run()
    wire = 1000 + Network.HEADER_BYTES
    expected = 10e-6 + wire / 1e6 + 100e-6 + 5e-6
    assert arrivals[0][0] == "x"
    assert arrivals[0][1] == pytest.approx(expected)


def test_sender_nic_serialises_back_to_back_sends():
    sim = Simulator()
    cfg = NetworkConfig(latency_s=0.0, bandwidth_bps=1e3, send_overhead_s=0.0, recv_overhead_s=0.0)
    net = Network(sim, cfg, num_nodes=3)
    arrivals = []

    def sender():
        yield from net.send(NetMessage(src=0, dst=1, kind="a", size=1000 - Network.HEADER_BYTES))
        yield from net.send(NetMessage(src=0, dst=2, kind="b", size=1000 - Network.HEADER_BYTES))

    def receiver(node):
        msg = yield net.mailbox(node).get()
        arrivals.append((msg.kind, sim.now))

    sim.spawn(sender(), name="s")
    sim.spawn(receiver(1), name="r1")
    sim.spawn(receiver(2), name="r2")
    sim.run()
    # each frame takes 1s on the shared sender NIC -> second arrives at 2s
    assert sorted(arrivals) == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]


def test_different_senders_do_not_contend():
    sim = Simulator()
    cfg = NetworkConfig(latency_s=0.0, bandwidth_bps=1e3, send_overhead_s=0.0, recv_overhead_s=0.0)
    net = Network(sim, cfg, num_nodes=4)
    arrivals = []

    def sender(src, dst, kind):
        yield from net.send(NetMessage(src=src, dst=dst, kind=kind, size=1000 - Network.HEADER_BYTES))

    def receiver(node):
        msg = yield net.mailbox(node).get()
        arrivals.append((msg.kind, sim.now))

    sim.spawn(sender(0, 2, "a"), name="s0")
    sim.spawn(sender(1, 3, "b"), name="s1")
    sim.spawn(receiver(2), name="r2")
    sim.spawn(receiver(3), name="r3")
    sim.run()
    # switched fabric: both frames land at 1s
    assert [t for _, t in sorted(arrivals)] == [pytest.approx(1.0), pytest.approx(1.0)]


def test_traffic_statistics_track_bytes_and_kinds():
    sim = Simulator()
    net = make_net(sim)

    def sender():
        yield from net.send(NetMessage(src=0, dst=1, kind="diff", size=100))
        yield from net.send(NetMessage(src=0, dst=2, kind="diff", size=200))
        yield from net.send(NetMessage(src=1, dst=0, kind="page", size=4096))

    def sink(node, n):
        for _ in range(n):
            yield net.mailbox(node).get()

    sim.spawn(sender(), name="s")
    sim.spawn(sink(1, 1), name="r1")
    sim.spawn(sink(2, 1), name="r2")
    sim.spawn(sink(0, 1), name="r0")
    sim.run()
    h = Network.HEADER_BYTES
    assert net.bytes_sent[0] == 300 + 2 * h
    assert net.bytes_sent[1] == 4096 + h
    assert net.msgs_by_kind == {"diff": 2, "page": 1}
    assert net.bytes_by_kind["page"] == 4096 + h
    assert net.total_bytes == 300 + 4096 + 3 * h


def test_send_validates_endpoints():
    sim = Simulator()
    net = make_net(sim)
    with pytest.raises(SimulationError):
        net.post(NetMessage(src=0, dst=9, kind="x", size=1))
    with pytest.raises(SimulationError):
        net.post(NetMessage(src=2, dst=2, kind="x", size=1))
    with pytest.raises(SimulationError):
        net.post(NetMessage(src=0, dst=1, kind="x", size=-5))


def test_round_trip_estimate_matches_measured_round_trip():
    sim = Simulator()
    cfg = NetworkConfig()
    net = Network(sim, cfg, num_nodes=2)
    times = []

    def client():
        t0 = sim.now
        yield from net.send(NetMessage(src=0, dst=1, kind="req", size=64))
        yield net.mailbox(0).get(lambda m: m.kind == "rep")
        times.append(sim.now - t0)

    def server():
        yield net.mailbox(1).get(lambda m: m.kind == "req")
        yield from net.send(NetMessage(src=1, dst=0, kind="rep", size=4096))

    sim.spawn(client(), name="c")
    sim.spawn(server(), name="s")
    sim.run()
    assert times[0] == pytest.approx(net.round_trip_estimate(64, 4096))


def test_delivered_at_stamped_on_message():
    sim = Simulator()
    net = make_net(sim)
    msg = NetMessage(src=0, dst=1, kind="x", size=10)

    def receiver():
        m = yield net.mailbox(1).get()
        assert m.delivered_at == sim.now

    sim.spawn(receiver(), name="r")
    net.post(msg)
    sim.run()
    assert msg.delivered_at > 0
