"""Property-based tests for the simulation substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.sim import FifoServer, NetMessage, Network, Simulator, Timeout


@settings(max_examples=100, deadline=None)
@given(services=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
def test_fifo_server_is_work_conserving_and_ordered(services):
    """Back-to-back requests complete in order with no idle gaps."""
    sim = Simulator()
    srv = FifoServer(sim, "s")
    finishes = []

    def body():
        sigs = [srv.request(s) for s in services]
        for sig in sigs:
            t = yield sig
            finishes.append(t)

    sim.spawn(body(), name="p")
    sim.run()
    # completion order == issue order, times are the prefix sums
    expected = []
    acc = 0.0
    for s in services:
        acc += s
        expected.append(acc)
    assert finishes == pytest.approx(expected)
    assert srv.busy_time == pytest.approx(sum(services))


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 10_000), min_size=1, max_size=20),
)
def test_network_messages_between_one_pair_arrive_fifo(sizes):
    """Per-(src, dst) delivery preserves send order (any size mix)."""
    sim = Simulator()
    net = Network(sim, NetworkConfig(), num_nodes=2)
    got = []

    def sender():
        for i, size in enumerate(sizes):
            yield from net.send(
                NetMessage(src=0, dst=1, kind="m", payload=i, size=size)
            )

    def receiver():
        for _ in sizes:
            msg = yield net.mailbox(1).get()
            got.append(msg.payload)

    sim.spawn(sender(), name="s")
    sim.spawn(receiver(), name="r")
    sim.run()
    assert got == list(range(len(sizes)))


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=20),
)
def test_virtual_clock_is_monotone_across_processes(delays):
    sim = Simulator()
    stamps = []

    def worker(d):
        yield Timeout(d)
        stamps.append(sim.now)

    for d in delays:
        sim.spawn(worker(d), name=f"w{d}")
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == pytest.approx(max(delays))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 6),
    traffic=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(1, 5000)),
        min_size=1,
        max_size=30,
    ),
)
def test_network_byte_accounting_balances(n, traffic):
    """Total bytes sent equals the sum of per-node and per-kind tallies."""
    sim = Simulator()
    net = Network(sim, NetworkConfig(), num_nodes=6)
    sent = 0

    def receiver(node, count):
        for _ in range(count):
            yield net.mailbox(node).get()

    per_dst = {}
    for src, dst, size in traffic:
        if src == dst:
            continue
        net.post(NetMessage(src=src, dst=dst, kind=f"k{size % 3}", size=size))
        sent += size + Network.HEADER_BYTES
        per_dst[dst] = per_dst.get(dst, 0) + 1
    for dst, count in per_dst.items():
        sim.spawn(receiver(dst, count), name=f"r{dst}")
    sim.run()
    assert net.total_bytes == sent
    assert sum(net.bytes_by_kind.values()) == sent
    assert sum(net.msgs_sent) == sum(per_dst.values())
