"""Unit tests for FifoServer and Mailbox."""

import pytest

from repro.errors import SimulationError
from repro.sim import FifoServer, Mailbox, Simulator, Timeout


class TestFifoServer:
    def test_single_request_completes_after_service_time(self):
        sim = Simulator()
        srv = FifoServer(sim, "s")
        done = []

        def body():
            t = yield srv.request(2.0)
            done.append(t)

        sim.spawn(body(), name="p")
        sim.run()
        assert done == [2.0]

    def test_requests_serialize_fifo(self):
        sim = Simulator()
        srv = FifoServer(sim, "s")
        finish = []

        def body():
            a = srv.request(1.0)
            b = srv.request(2.0)
            c = srv.request(0.5)
            # issue all three back-to-back; completions stack up
            ta = yield a
            tb = yield b
            tc = yield c
            finish.extend([ta, tb, tc])

        sim.spawn(body(), name="p")
        sim.run()
        assert finish == [1.0, 3.0, 3.5]

    def test_idle_gap_resets_queue(self):
        sim = Simulator()
        srv = FifoServer(sim, "s")
        finish = []

        def body():
            t1 = yield srv.request(1.0)
            yield Timeout(10.0)  # server idles
            t2 = yield srv.request(1.0)
            finish.extend([t1, t2])

        sim.spawn(body(), name="p")
        sim.run()
        assert finish == [1.0, 12.0]

    def test_busy_time_and_count_accumulate(self):
        sim = Simulator()
        srv = FifoServer(sim, "s")
        srv.request(1.0)
        srv.request(2.5)
        assert srv.busy_time == 3.5
        assert srv.num_requests == 2
        assert srv.backlog == 3.5
        sim.run()
        assert srv.backlog == 0.0

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        srv = FifoServer(sim, "s")
        with pytest.raises(SimulationError):
            srv.request(-1.0)


class TestMailbox:
    def test_put_then_get(self):
        sim = Simulator()
        mbox = Mailbox(sim, "m")
        mbox.put("hello")
        got = []

        def body():
            m = yield mbox.get()
            got.append(m)

        sim.spawn(body(), name="p")
        sim.run()
        assert got == ["hello"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        mbox = Mailbox(sim, "m")
        got = []

        def body():
            m = yield mbox.get()
            got.append((m, sim.now))

        sim.spawn(body(), name="p")
        sim.schedule(5.0, lambda: mbox.put("late"))
        sim.run()
        assert got == [("late", 5.0)]

    def test_predicate_receives_only_matching_message(self):
        sim = Simulator()
        mbox = Mailbox(sim, "m")
        mbox.put({"kind": "a"})
        mbox.put({"kind": "b"})
        got = []

        def body():
            m = yield mbox.get(lambda m: m["kind"] == "b")
            got.append(m["kind"])
            m = yield mbox.get()
            got.append(m["kind"])

        sim.spawn(body(), name="p")
        sim.run()
        assert got == ["b", "a"]

    def test_waiters_matched_in_order(self):
        sim = Simulator()
        mbox = Mailbox(sim, "m")
        got = []

        def waiter(tag):
            m = yield mbox.get()
            got.append((tag, m))

        sim.spawn(waiter("first"), name="w1")
        sim.spawn(waiter("second"), name="w2")
        sim.schedule(1.0, lambda: mbox.put("x"))
        sim.schedule(2.0, lambda: mbox.put("y"))
        sim.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_len_counts_undelivered(self):
        sim = Simulator()
        mbox = Mailbox(sim, "m")
        mbox.put(1)
        mbox.put(2)
        assert len(mbox) == 2
        assert mbox.delivered == 2
