"""The calendar-bucket engine fires events exactly like a (time, seq) heap.

The engine in :mod:`repro.sim.engine` replaced the classic binary-heap
scheduler with calendar buckets, batched same-timestamp dispatch, a
serial spin fast path, and inlined process stepping -- all pure
mechanics.  The *observable* contract is unchanged: events fire in
``(time, scheduling order)`` sequence, which the recovery layer's
piecewise-deterministic replay assumes.  This suite pins that contract
against :class:`ReferenceHeapSimulator`, a deliberately naive
re-implementation of the old scheduler, across seeded random workloads
covering:

* callback storms with zero delays and colliding timestamps;
* coroutine processes mixing bare-float timeouts, ``Timeout`` objects,
  signal waits/triggers, and joins (exercising the spin fast path and
  batched dispatch);
* ``run(until=...)`` truncation and segmented resumption;
* ``schedule_labeled`` parking under a controlled scheduler;
* deadlock detection (both engines must name the same blocked set).
"""

import heapq
import random

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Signal, Simulator, Timeout
from repro.sim.engine import PendingChoice
from repro.sim.process import SimProcess


class ReferenceHeapSimulator:
    """The classic ``(time, seq)`` heap scheduler, kept as an oracle.

    Implements the :class:`Simulator` surface the workloads below use
    (``schedule``, ``schedule_labeled``, ``spawn``, ``run``, ``now``,
    ``choice_fn``) with one heap entry per event and a monotone
    sequence number as the tie-breaker -- the textbook formulation the
    production engine must stay order-identical to.
    """

    def __init__(self):
        self.now = 0.0
        self._seq = 0
        self._heap = []
        self._processes = []
        #: SimProcess._resume appends here when set; the reference
        #: scheduler never batches, so it stays None.
        self._active = None
        self.choice_fn = None
        self._choices = []

    def schedule(self, delay, fn):
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def schedule_labeled(self, delay, fn, label):
        if self.choice_fn is None:
            self.schedule(delay, fn)
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        self._choices.append(PendingChoice(label, self.now + delay, self._seq, fn))

    def spawn(self, gen, name="proc"):
        proc = SimProcess(self, gen, name=name)
        self._processes.append(proc)
        self.schedule(0.0, proc)
        return proc

    def run(self, until=None, detect_deadlock=True):
        while True:
            if self._heap:
                t, _seq, fn = self._heap[0]
                if until is not None and t > until:
                    self.now = until
                    return until
                heapq.heappop(self._heap)
                self.now = t
                if isinstance(fn, SimProcess):
                    if fn.alive:
                        value = fn._value
                        fn._value = None
                        fn._step(value)
                else:
                    fn()
                continue
            if self.choice_fn is None or not self._choices:
                break
            chosen = self.choice_fn(list(self._choices))
            if chosen is None:
                break
            self._choices.remove(chosen)
            if chosen.time > self.now:
                self.now = chosen.time
            chosen.fn()
        if detect_deadlock:
            blocked = [p.name for p in self._processes if p.alive]
            if blocked:
                raise DeadlockError(blocked)
        return self.now


#: Delay menu: zero delays, colliding repeats, sub-resolution floats,
#: and values whose sums collide (0.25 + 0.75 == 0.5 + 0.5).
DELAYS = [0.0, 0.0, 1e-9, 1e-4, 1e-4, 0.25, 0.5, 0.5, 0.75, 1.0, 3.5]


# ----------------------------------------------------------------------
# workload 1: callback trees
# ----------------------------------------------------------------------

def _gen_tree(rng, depth, counter):
    node = {"id": counter[0], "children": []}
    counter[0] += 1
    if depth > 0:
        for _ in range(rng.randrange(0, 4)):
            node["children"].append(
                (rng.choice(DELAYS), _gen_tree(rng, depth - 1, counter))
            )
    return node


def _fire(sim, log, node):
    def fn():
        log.append((sim.now, node["id"]))
        for delay, child in node["children"]:
            sim.schedule(delay, _fire(sim, log, child))
    return fn


def _run_tree_workload(sim, roots, until_points):
    log = []
    for delay, root in roots:
        sim.schedule(delay, _fire(sim, log, root))
    marks = []
    for u in until_points:
        marks.append((sim.run(until=u, detect_deadlock=False), len(log)))
    sim.run(detect_deadlock=False)
    return log, marks


@pytest.mark.parametrize("seed", range(25))
def test_callback_trees_fire_in_identical_order(seed):
    rng = random.Random(seed)
    counter = [0]
    roots = [
        (rng.choice(DELAYS), _gen_tree(rng, rng.randrange(1, 5), counter))
        for _ in range(rng.randrange(1, 5))
    ]
    # segmented run: truncate at a few seeded instants, then drain
    until_points = sorted(rng.uniform(0.0, 4.0) for _ in range(rng.randrange(0, 3)))

    log_new, marks_new = _run_tree_workload(Simulator(), roots, until_points)
    log_ref, marks_ref = _run_tree_workload(
        ReferenceHeapSimulator(), roots, until_points
    )
    assert log_new == log_ref
    assert marks_new == marks_ref
    assert len(log_new) == counter[0]


# ----------------------------------------------------------------------
# workload 2: coroutine processes (timeouts, signals, joins)
# ----------------------------------------------------------------------

def _gen_program(rng):
    """A seeded multi-process script over a small shared signal space.

    Each signal key has exactly one triggering op (double-trigger is an
    error) but any number of waiters; waits on never-triggered keys are
    *intentional* -- both engines must then report the same deadlock.
    """
    nprocs = rng.randrange(1, 5)
    triggered = set()
    program = []
    for _pid in range(nprocs):
        ops = []
        for _ in range(rng.randrange(2, 9)):
            kind = rng.randrange(6)
            if kind <= 1:
                ops.append(("sleep", rng.choice(DELAYS)))
            elif kind == 2:
                ops.append(("sleep_t", rng.choice(DELAYS)))
            elif kind == 3:
                key = rng.randrange(4)
                if key not in triggered:
                    triggered.add(key)
                    ops.append(("trigger", key))
            elif kind == 4:
                ops.append(("wait", rng.randrange(4)))
            else:
                ops.append(("spin", rng.randrange(1, 30)))
        program.append(ops)
    return program


def _run_program(sim, program):
    log = []
    signals = {}

    def sig(key):
        if key not in signals:
            signals[key] = Signal(f"s{key}")
        return signals[key]

    def body(pid, ops):
        for j, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield op[1]
            elif kind == "sleep_t":
                yield Timeout(op[1])
            elif kind == "trigger":
                sig(op[1]).trigger((pid, j))
            elif kind == "wait":
                got = yield sig(op[1])
                log.append((sim.now, pid, j, got))
                continue
            elif kind == "spin":
                # lone-runner consecutive timeouts: the engine's serial
                # spin fast path, the reference's heap churn
                for _ in range(op[1]):
                    yield 0.001
            log.append((sim.now, pid, j, None))

    for pid, ops in enumerate(program):
        sim.spawn(body(pid, ops), name=f"p{pid}")
    try:
        end = sim.run()
        return log, end, None
    except DeadlockError as exc:
        return log, sim.now, str(exc)


@pytest.mark.parametrize("seed", range(25))
def test_process_programs_step_in_identical_order(seed):
    program = _gen_program(random.Random(seed))
    log_new, end_new, dl_new = _run_program(Simulator(), program)
    log_ref, end_ref, dl_ref = _run_program(ReferenceHeapSimulator(), program)
    assert log_new == log_ref
    assert end_new == end_ref
    assert dl_new == dl_ref  # same deadlock verdict, same blocked names


def test_single_process_spin_matches_reference_exactly():
    """The spin fast path advances the clock bit-identically."""
    def body():
        for i in range(200):
            yield 0.001 * (1 + (i % 7))

    sim_new, sim_ref = Simulator(), ReferenceHeapSimulator()
    sim_new.spawn(body(), name="solo")
    sim_ref.spawn(body(), name="solo")
    assert sim_new.run() == sim_ref.run()


# ----------------------------------------------------------------------
# workload 3: labelled parking under a controlled scheduler
# ----------------------------------------------------------------------

def _labeled_workload(sim, seed):
    rng = random.Random(seed)
    log = []
    sim.choice_fn = lambda pending: min(pending, key=lambda c: (c.time, c.label))

    def delivery(label):
        def fn():
            log.append((sim.now, "choice", label))
            # a delivery wakes eager follow-up work that must drain
            # before the next labelled choice fires
            sim.schedule(rng.choice(DELAYS), lambda: log.append((sim.now, "eager", label)))
        return fn

    def source():
        for i in range(rng.randrange(3, 8)):
            yield rng.choice(DELAYS)
            sim.schedule_labeled(rng.choice(DELAYS), delivery(i), label=i)
            log.append((sim.now, "sent", i))

    sim.spawn(source(), name="src")
    sim.run(detect_deadlock=False)
    return log


@pytest.mark.parametrize("seed", range(10))
def test_labeled_parking_fires_in_identical_order(seed):
    assert _labeled_workload(Simulator(), seed) == _labeled_workload(
        ReferenceHeapSimulator(), seed
    )


# ----------------------------------------------------------------------
# repr/pending accounting (parked choices count as pending)
# ----------------------------------------------------------------------

def test_pending_count_includes_parked_choices():
    sim = Simulator()
    sim.choice_fn = lambda pending: None
    sim.schedule(1.0, lambda: None)
    sim.schedule_labeled(2.0, lambda: None, label="a")
    sim.schedule_labeled(3.0, lambda: None, label="b")
    assert sim.pending_count == 3
    assert "pending=3" in repr(sim)
