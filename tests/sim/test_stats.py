"""Unit tests for statistics and tracing helpers."""

from repro.sim import Counter, NodeStats, TimeBreakdown
from repro.sim.trace import Tracer


class TestCounter:
    def test_add_creates_and_increments(self):
        c = Counter()
        c.add("x")
        c.add("x", 2)
        assert c["x"] == 3

    def test_merge_accumulates(self):
        a = Counter({"x": 1, "y": 2})
        b = Counter({"y": 3, "z": 4})
        a.merge(b)
        assert a == {"x": 1, "y": 5, "z": 4}


class TestTimeBreakdown:
    def test_add_and_total(self):
        tb = TimeBreakdown()
        tb.add("compute", 1.0)
        tb.add("sync", 0.5)
        tb.add("compute", 0.25)
        assert tb.get("compute") == 1.25
        assert tb.get("missing") == 0.0
        assert tb.total == 1.75

    def test_merge(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add("compute", 1.0)
        b.add("compute", 2.0)
        b.add("fault", 3.0)
        a.merge(b)
        assert a.as_dict() == {"compute": 3.0, "fault": 3.0}


class TestNodeStats:
    def test_count_and_charge(self):
        s = NodeStats(3)
        s.count("page_faults")
        s.count("page_faults", 4)
        s.charge("fault", 0.1)
        d = s.as_dict()
        assert d["node"] == 3
        assert d["counters"]["page_faults"] == 5
        assert d["time"]["fault"] == 0.1

    def test_aggregate_sums_across_nodes(self):
        nodes = []
        for i in range(3):
            s = NodeStats(i)
            s.count("flushes", i + 1)
            s.charge("compute", float(i))
            nodes.append(s)
        agg = NodeStats.aggregate(nodes)
        assert agg.node_id == -1
        assert agg.counters["flushes"] == 6
        assert agg.time.get("compute") == 3.0


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(0.0, 1, "acq")
        assert len(t) == 0

    def test_enabled_tracer_records_and_filters(self):
        t = Tracer(enabled=True)
        t.record(0.0, 1, "acq", "L0")
        t.record(1.0, 2, "rel", "L0")
        t.record(2.0, 1, "rel", "L1")
        assert len(t) == 3
        assert [e.time for e in t.filter(event="rel")] == [1.0, 2.0]
        assert [e.event for e in t.filter(node=1)] == ["acq", "rel"]
        assert [e.detail for e in t.filter(event="rel", node=1)] == ["L1"]
        t.clear()
        assert len(t) == 0
