"""Unit tests for the cluster configuration and cost model."""

import pytest

from repro.config import (
    ClusterConfig,
    CpuConfig,
    DiskConfig,
    NetworkConfig,
    WORD_SIZE,
)
from repro.errors import ConfigError


class TestNetworkConfig:
    def test_transfer_time(self):
        net = NetworkConfig(bandwidth_bps=1e6)
        assert net.transfer_time(500_000) == pytest.approx(0.5)


class TestDiskConfig:
    def test_read_path_asymmetry(self):
        d = DiskConfig()
        n = 4096
        # cache-warm < streamed scan < buffered write < cold random read
        assert (
            d.cached_read_time(n)
            < d.seq_read_time(n)
            < d.write_time(n)
            < d.read_time(n)
        )

    def test_op_time_alias(self):
        d = DiskConfig()
        assert d.op_time(100) == d.read_time(100)


class TestCpuConfig:
    def test_compute_time(self):
        cpu = CpuConfig(flop_rate=1e6)
        assert cpu.compute_time(2e6) == pytest.approx(2.0)


class TestClusterConfig:
    def test_ultra5_defaults(self):
        cfg = ClusterConfig.ultra5()
        assert cfg.num_nodes == 8
        assert cfg.page_size == 4096
        assert cfg.words_per_page == 4096 // WORD_SIZE

    def test_invalid_node_count(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)

    def test_invalid_page_size(self):
        with pytest.raises(ConfigError):
            ClusterConfig(page_size=6)  # not word aligned
        with pytest.raises(ConfigError):
            ClusterConfig(page_size=4)  # below two words

    def test_shared_memory_alignment_checked(self):
        with pytest.raises(ConfigError):
            ClusterConfig(page_size=4096, shared_memory_bytes=4097)

    def test_with_changes_is_pure(self):
        cfg = ClusterConfig.ultra5()
        slow = cfg.with_changes(disk=DiskConfig(bandwidth_bps=1e6))
        assert slow.disk.bandwidth_bps == 1e6
        assert cfg.disk.bandwidth_bps != 1e6
        assert slow.num_nodes == cfg.num_nodes

    def test_configs_are_frozen(self):
        cfg = ClusterConfig.ultra5()
        with pytest.raises(Exception):
            cfg.num_nodes = 16
