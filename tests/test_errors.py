"""Tests for the exception hierarchy and error-path behaviours."""

import pytest

from repro import errors


def test_every_error_derives_from_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_hierarchy_relationships():
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.ProcessKilled, errors.SimulationError)
    assert issubclass(errors.SynchronizationError, errors.ProtocolError)


def test_deadlock_error_names_blocked_processes():
    err = errors.DeadlockError(["main1", "server2"])
    assert err.blocked == ["main1", "server2"]
    assert "main1" in str(err) and "server2" in str(err)


def test_catching_the_base_class_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.RecoveryError("x")
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError(["p"])


class TestDefaultLoggingHooks:
    """The NoLogging baseline must be a total no-op for every hook."""

    def test_all_hooks_are_noops(self):
        import numpy as np

        from repro.dsm import NoLogging, VectorClock
        from repro.dsm.messages import DiffBatch
        from repro.memory import Diff

        hooks = NoLogging()
        hooks.bind(object())
        vt = VectorClock.zero(2)
        d = Diff(0, [(0, np.array([1], dtype=np.uint32))])
        hooks.on_notices_received([], 0)
        hooks.on_page_fetched(0, np.zeros(16, np.uint8), vt, 0)
        hooks.on_update_received(DiffBatch(0, 0, vt, [d]))
        hooks.on_early_diff(d, 1, vt)
        hooks.on_interval_end(0, vt, [], [], None)
        assert hooks.overlapped_flush() is None
        assert list(hooks.sync_entry_flush()) == []
        assert hooks.log_summary()["flushes"] == 0
        assert hooks.flush_at_sync_entry is False
        assert hooks.wants_home_diffs is False
